package workloads

import (
	"fmt"

	"jrpm"
	"jrpm/internal/vmsim"
)

// ---------------------------------------------------------------------------
// BitOps (jBYTEmark): bit-array operations. Very fine-grained threads (the
// paper reports 29-cycle threads): word-wise set/toggle sweeps and a
// popcount reduction.

const bitOpsSrc = `
// Bit array operations: set ranges, toggle ranges, count bits.
global bits: int[];   // bit array, 32 bits per word
global ops: int[];    // triples: (kind, start, len) in bit positions
global out: int[];    // [0] = final popcount
global expected: int[];

func setbit(w: int, b: int): int { return w | (1 << b); }
func clrbit(w: int, b: int): int { return w & (0xffffffff ^ (1 << b)); }

func main() {
	var nops: int = len(ops) / 3;
	var o: int = 0;
	// apply each range op
	while (o < nops) {
		var kind: int = ops[o*3];
		var start: int = ops[o*3+1];
		var n: int = ops[o*3+2];
		var b: int = start;
		// fine-grained STL: one bit per iteration
		while (b < start + n) {
			var w: int = b >> 5;
			var pos: int = b & 31;
			if (kind == 0) {
				bits[w] = setbit(bits[w], pos);
			} else {
				if (kind == 1) {
					bits[w] = clrbit(bits[w], pos);
				} else {
					bits[w] = bits[w] ^ (1 << pos);
				}
			}
			b++;
		}
		o++;
	}
	// popcount reduction
	var count: int = 0;
	var i: int = 0;
	while (i < len(bits)) {
		var w: int = bits[i];
		while (w != 0) {
			w = w & (w - 1);
			count++;
		}
		i++;
	}
	out[0] = count;
}
`

func init() {
	register(&Workload{
		Meta: Meta{
			Name:        "BitOps",
			Category:    CatInteger,
			Description: "Bit array operations",
		},
		Source: bitOpsSrc,
		NewInput: func(scale float64) jrpm.Input {
			r := newRNG(0xb1707)
			words := scaled(512, scale, 32)
			nops := scaled(160, scale, 8)
			bits := make([]int64, words)
			ops := make([]int64, 0, nops*3)
			for i := 0; i < nops; i++ {
				kind := int64(r.intn(3))
				start := int64(r.intn(words*32 - 64))
				n := int64(8 + r.intn(56))
				ops = append(ops, kind, start, n)
			}
			// Reference result.
			ref := make([]uint32, words)
			for i := 0; i < nops; i++ {
				kind, start, n := ops[i*3], ops[i*3+1], ops[i*3+2]
				for b := start; b < start+n; b++ {
					w, pos := b>>5, uint(b&31)
					switch kind {
					case 0:
						ref[w] |= 1 << pos
					case 1:
						ref[w] &^= 1 << pos
					default:
						ref[w] ^= 1 << pos
					}
				}
			}
			count := int64(0)
			for _, w := range ref {
				for w != 0 {
					w &= w - 1
					count++
				}
			}
			return jrpm.Input{Ints: map[string][]int64{
				"bits":     bits,
				"ops":      ops,
				"out":      {0},
				"expected": {count},
			}}
		},
		Check: checkIntsEqual("out", "expected"),
	})
}

// checkIntsEqual compares two int global arrays element-wise.
func checkIntsEqual(got, want string) func(vm *vmsim.VM) error {
	return func(vm *vmsim.VM) error {
		g, err := vm.GlobalInts(got)
		if err != nil {
			return err
		}
		w, err := vm.GlobalInts(want)
		if err != nil {
			return err
		}
		if len(g) != len(w) {
			return fmt.Errorf("%s has %d elements, %s has %d", got, len(g), want, len(w))
		}
		for i := range w {
			if g[i] != w[i] {
				return fmt.Errorf("%s[%d] = %d, want %d", got, i, g[i], w[i])
			}
		}
		return nil
	}
}

// checkFloatsClose compares two float global arrays with a relative
// tolerance (used where JR and Go evaluation order may differ).
func checkFloatsClose(got, want string, tol float64) func(vm *vmsim.VM) error {
	return func(vm *vmsim.VM) error {
		g, err := vm.GlobalFloats(got)
		if err != nil {
			return err
		}
		w, err := vm.GlobalFloats(want)
		if err != nil {
			return err
		}
		if len(g) != len(w) {
			return fmt.Errorf("%s has %d elements, %s has %d", got, len(g), want, len(w))
		}
		for i := range w {
			d := g[i] - w[i]
			if d < 0 {
				d = -d
			}
			m := w[i]
			if m < 0 {
				m = -m
			}
			if d > tol*(1+m) {
				return fmt.Errorf("%s[%d] = %g, want %g", got, i, g[i], w[i])
			}
		}
		return nil
	}
}

// ---------------------------------------------------------------------------
// IDEA (jBYTEmark): block encryption. One coarse, fully parallel outer loop
// over 4-word blocks with an 8-round inner loop (the paper reports
// 6307-cycle threads and a single selected loop).

const ideaSrc = `
// IDEA-style block cipher: 8 rounds of mul-mod-65537 / add-mod-65536 / xor.
global data: int[];   // 4 16-bit words per block
global key: int[];    // 52 subkeys
global out: int[];
global expected: int[];

func mulmod(a: int, b: int): int {
	// multiplication modulo 65537 with the IDEA zero convention
	if (a == 0) { a = 65536; }
	if (b == 0) { b = 65536; }
	var p: int = (a * b) % 65537;
	if (p == 65536) { p = 0; }
	return p;
}

func main() {
	var nblk: int = len(data) / 4;
	var blk: int = 0;
	while (blk < nblk) {
		var x0: int = data[blk*4];
		var x1: int = data[blk*4+1];
		var x2: int = data[blk*4+2];
		var x3: int = data[blk*4+3];
		var r: int = 0;
		while (r < 8) {
			var k: int = r * 6;
			x0 = mulmod(x0, key[k]);
			x1 = (x1 + key[k+1]) & 0xffff;
			x2 = (x2 + key[k+2]) & 0xffff;
			x3 = mulmod(x3, key[k+3]);
			var t0: int = x0 ^ x2;
			var t1: int = x1 ^ x3;
			t0 = mulmod(t0, key[k+4]);
			t1 = (t1 + t0) & 0xffff;
			t1 = mulmod(t1, key[k+5]);
			t0 = (t0 + t1) & 0xffff;
			x0 = x0 ^ t1;
			x2 = x2 ^ t1;
			x1 = x1 ^ t0;
			x3 = x3 ^ t0;
			r++;
		}
		out[blk*4]   = mulmod(x0, key[48]);
		out[blk*4+1] = (x2 + key[49]) & 0xffff;
		out[blk*4+2] = (x1 + key[50]) & 0xffff;
		out[blk*4+3] = mulmod(x3, key[51]);
		blk++;
	}
}
`

func ideaMulMod(a, b int64) int64 {
	if a == 0 {
		a = 65536
	}
	if b == 0 {
		b = 65536
	}
	p := (a * b) % 65537
	if p == 65536 {
		p = 0
	}
	return p
}

func init() {
	register(&Workload{
		Meta: Meta{
			Name:        "IDEA",
			Category:    CatInteger,
			Description: "Encryption",
			Analyzable:  true,
		},
		Source: ideaSrc,
		NewInput: func(scale float64) jrpm.Input {
			r := newRNG(0x1dea)
			nblk := scaled(220, scale, 8)
			data := make([]int64, nblk*4)
			for i := range data {
				data[i] = int64(r.intn(65536))
			}
			key := make([]int64, 52)
			for i := range key {
				key[i] = int64(r.intn(65536))
			}
			// Reference encryption.
			exp := make([]int64, nblk*4)
			for blk := 0; blk < nblk; blk++ {
				x0, x1, x2, x3 := data[blk*4], data[blk*4+1], data[blk*4+2], data[blk*4+3]
				for rr := 0; rr < 8; rr++ {
					k := int64(rr * 6)
					x0 = ideaMulMod(x0, key[k])
					x1 = (x1 + key[k+1]) & 0xffff
					x2 = (x2 + key[k+2]) & 0xffff
					x3 = ideaMulMod(x3, key[k+3])
					t0 := x0 ^ x2
					t1 := x1 ^ x3
					t0 = ideaMulMod(t0, key[k+4])
					t1 = (t1 + t0) & 0xffff
					t1 = ideaMulMod(t1, key[k+5])
					t0 = (t0 + t1) & 0xffff
					x0 ^= t1
					x2 ^= t1
					x1 ^= t0
					x3 ^= t0
				}
				exp[blk*4] = ideaMulMod(x0, key[48])
				exp[blk*4+1] = (x2 + key[49]) & 0xffff
				exp[blk*4+2] = (x1 + key[50]) & 0xffff
				exp[blk*4+3] = ideaMulMod(x3, key[51])
			}
			return jrpm.Input{Ints: map[string][]int64{
				"data":     data,
				"key":      key,
				"out":      make([]int64, nblk*4),
				"expected": exp,
			}}
		},
		Check: checkIntsEqual("out", "expected"),
	})
}

// ---------------------------------------------------------------------------
// monteCarlo (Java Grande): Monte Carlo simulation. The outer sample loop
// is embarrassingly parallel once the accumulator is recognized as a
// reduction; each sample runs a private LCG.

const monteCarloSrc = `
// Monte Carlo pi-style estimation with per-sample LCG streams.
global seeds: int[];
global out: int[];    // [0] = hits
global expected: int[];

func main() {
	var hits: int = 0;
	var i: int = 0;
	while (i < len(seeds)) {
		var s: int = seeds[i];
		var j: int = 0;
		// burn a few LCG steps per sample to give threads some size
		while (j < 8) {
			s = (s * 1103515245 + 12345) & 0x7fffffff;
			j++;
		}
		var x: int = s & 0xffff;
		s = (s * 1103515245 + 12345) & 0x7fffffff;
		var y: int = s & 0xffff;
		if (x*x + y*y < 65536*65536/2) {
			hits += 1;
		}
		i++;
	}
	out[0] = hits;
}
`

func init() {
	register(&Workload{
		Meta: Meta{
			Name:        "monteCarlo",
			Category:    CatInteger,
			Description: "Monte carlo sim",
		},
		Source: monteCarloSrc,
		NewInput: func(scale float64) jrpm.Input {
			r := newRNG(0x3c4a10)
			n := scaled(3000, scale, 64)
			seeds := make([]int64, n)
			for i := range seeds {
				seeds[i] = int64(r.intn(1 << 30))
			}
			hits := int64(0)
			for _, s0 := range seeds {
				s := s0
				for j := 0; j < 8; j++ {
					s = (s*1103515245 + 12345) & 0x7fffffff
				}
				x := s & 0xffff
				s = (s*1103515245 + 12345) & 0x7fffffff
				y := s & 0xffff
				if x*x+y*y < 65536*65536/2 {
					hits++
				}
			}
			return jrpm.Input{Ints: map[string][]int64{
				"seeds":    seeds,
				"out":      {0},
				"expected": {hits},
			}}
		},
		Check: checkIntsEqual("out", "expected"),
	})
}

// ---------------------------------------------------------------------------
// NumHeapSort (jBYTEmark): heap sort. Sift-down chains serialize through
// the array; TEST should find modest parallelism at best (the paper
// reports 555-cycle threads and highly varying thread sizes).

const numHeapSortSrc = `
// Heap sort over an int array.
global a: int[];
global expected: int[];

func siftdown(i: int, n: int) {
	var root: int = i;
	var done: int = 0;
	while (done == 0) {
		var child: int = root*2 + 1;
		if (child >= n) {
			done = 1;
		} else {
			if (child + 1 < n && a[child] < a[child+1]) {
				child++;
			}
			if (a[root] < a[child]) {
				var t: int = a[root];
				a[root] = a[child];
				a[child] = t;
				root = child;
			} else {
				done = 1;
			}
		}
	}
}

func main() {
	var n: int = len(a);
	// heapify
	var i: int = n/2 - 1;
	while (i >= 0) {
		siftdown(i, n);
		i = i - 1;
	}
	// extract
	var end: int = n - 1;
	while (end > 0) {
		var t: int = a[0];
		a[0] = a[end];
		a[end] = t;
		siftdown(0, end);
		end = end - 1;
	}
}
`

func init() {
	register(&Workload{
		Meta: Meta{
			Name:        "NumHeapSort",
			Category:    CatInteger,
			Description: "Heap sort",
		},
		Source: numHeapSortSrc,
		NewInput: func(scale float64) jrpm.Input {
			r := newRNG(0x50127)
			n := scaled(1200, scale, 32)
			a := make([]int64, n)
			for i := range a {
				a[i] = int64(r.intn(1 << 20))
			}
			exp := append([]int64(nil), a...)
			// Insertion-free reference: simple sort.
			for i := 1; i < len(exp); i++ {
				for j := i; j > 0 && exp[j-1] > exp[j]; j-- {
					exp[j-1], exp[j] = exp[j], exp[j-1]
				}
			}
			return jrpm.Input{Ints: map[string][]int64{
				"a":        a,
				"expected": exp,
			}}
		},
		Check: checkIntsEqual("a", "expected"),
	})
}
