package workloads

import "jrpm"

// ---------------------------------------------------------------------------
// Assignment (jBYTEmark): task-assignment cost-matrix reduction on a 2-D
// array. The paper highlights Assignment as data-set sensitive: with a
// 51x51 matrix the selected STL moves between nest levels as the input
// grows (many STLs contribute about equally — 11 selected loops).

const assignmentSrc = `
// Hungarian-style row/column reduction passes over an n x n cost matrix.
global cost: int[];  // n*n, row major
global dims: int[];  // [0] = n
global out: int[];   // [0] = checksum, [1] = zero count
global expected: int[];

func main() {
	var n: int = dims[0];
	var pass: int = 0;
	while (pass < 3) {
		// row reduction
		var r: int = 0;
		while (r < n) {
			var min: int = cost[r*n];
			var c: int = 1;
			while (c < n) {
				if (cost[r*n+c] < min) { min = cost[r*n+c]; }
				c++;
			}
			c = 0;
			while (c < n) {
				cost[r*n+c] = cost[r*n+c] - min;
				c++;
			}
			r++;
		}
		// column reduction
		var cc: int = 0;
		while (cc < n) {
			var cmin: int = cost[cc];
			var rr: int = 1;
			while (rr < n) {
				if (cost[rr*n+cc] < cmin) { cmin = cost[rr*n+cc]; }
				rr++;
			}
			rr = 0;
			while (rr < n) {
				cost[rr*n+cc] = cost[rr*n+cc] - cmin;
				rr++;
			}
			cc++;
		}
		pass++;
	}
	// count zeros and checksum
	var zeros: int = 0;
	var sum: int = 0;
	var i: int = 0;
	while (i < n*n) {
		if (cost[i] == 0) { zeros++; }
		sum = (sum + cost[i]*(i+1)) & 0xffffff;
		i++;
	}
	out[0] = sum;
	out[1] = zeros;
}
`

func init() {
	register(&Workload{
		Meta: Meta{
			Name:             "Assignment",
			Category:         CatInteger,
			Description:      "Resource allocation",
			DataSetSensitive: true,
			DataSet:          "51x51",
		},
		Source: assignmentSrc,
		NewInput: func(scale float64) jrpm.Input {
			r := newRNG(0xa551)
			n := scaled(51, scale, 8)
			cost := make([]int64, n*n)
			for i := range cost {
				cost[i] = int64(r.intn(1000))
			}
			// Reference.
			m := append([]int64(nil), cost...)
			for pass := 0; pass < 3; pass++ {
				for row := 0; row < n; row++ {
					min := m[row*n]
					for c := 1; c < n; c++ {
						if m[row*n+c] < min {
							min = m[row*n+c]
						}
					}
					for c := 0; c < n; c++ {
						m[row*n+c] -= min
					}
				}
				for c := 0; c < n; c++ {
					min := m[c]
					for row := 1; row < n; row++ {
						if m[row*n+c] < min {
							min = m[row*n+c]
						}
					}
					for row := 0; row < n; row++ {
						m[row*n+c] -= min
					}
				}
			}
			var zeros, sum int64
			for i := range m {
				if m[i] == 0 {
					zeros++
				}
				sum = (sum + m[i]*int64(i+1)) & 0xffffff
			}
			return jrpm.Input{Ints: map[string][]int64{
				"cost":     cost,
				"dims":     {int64(n)},
				"out":      {0, 0},
				"expected": {sum, zeros},
			}}
		},
		Check: checkIntsEqual("out", "expected"),
	})
}

// ---------------------------------------------------------------------------
// EmFloatPnt (jBYTEmark): software floating-point emulation. Each element
// runs a soft multiply with a shift-add mantissa loop and renormalization,
// so threads are very coarse (the paper reports 20127-cycle threads and a
// single selected loop).

const emFloatSrc = `
// Software floating point: numbers packed as sign<<56 | exp<<48 | man(24b)
// are multiplied pairwise with an explicit shift-add mantissa loop.
global a: int[];
global b: int[];
global out: int[];
global expected: int[];

func softmul(x: int, y: int): int {
	var sx: int = (x >> 56) & 1;
	var ex: int = (x >> 48) & 0xff;
	var mx: int = x & 0xffffff;
	var sy: int = (y >> 56) & 1;
	var ey: int = (y >> 48) & 0xff;
	var my: int = y & 0xffffff;
	var s: int = sx ^ sy;
	var e: int = ex + ey - 127;
	// shift-add multiply of two 24-bit mantissas
	var p: int = 0;
	var bit: int = 0;
	while (bit < 24) {
		if (((my >> bit) & 1) == 1) {
			p = p + (mx << bit);
		}
		bit++;
	}
	// normalize the 48-bit product back to 24 bits
	while (p >= 16777216 * 2) {
		p = p >> 1;
		e++;
	}
	while (p != 0 && p < 16777216) {
		p = p << 1;
		e = e - 1;
	}
	p = p & 0xffffff;
	if (e < 0) { e = 0; p = 0; }
	if (e > 255) { e = 255; }
	return (s << 56) | (e << 48) | p;
}

func main() {
	var i: int = 0;
	while (i < len(a)) {
		var m: int = softmul(a[i], b[i]);
		out[i] = softmul(m, a[i]);
		i++;
	}
}
`

func softmulRef(x, y int64) int64 {
	sx, ex, mx := (x>>56)&1, (x>>48)&0xff, x&0xffffff
	sy, ey, my := (y>>56)&1, (y>>48)&0xff, y&0xffffff
	s := sx ^ sy
	e := ex + ey - 127
	var p int64
	for bit := int64(0); bit < 24; bit++ {
		if (my>>bit)&1 == 1 {
			p += mx << bit
		}
	}
	for p >= 16777216*2 {
		p >>= 1
		e++
	}
	for p != 0 && p < 16777216 {
		p <<= 1
		e--
	}
	p &= 0xffffff
	if e < 0 {
		e, p = 0, 0
	}
	if e > 255 {
		e = 255
	}
	return s<<56 | e<<48 | p
}

func init() {
	register(&Workload{
		Meta: Meta{
			Name:        "EmFloatPnt",
			Category:    CatInteger,
			Description: "FP emulation",
		},
		Source: emFloatSrc,
		NewInput: func(scale float64) jrpm.Input {
			r := newRNG(0xef107)
			n := scaled(300, scale, 16)
			a := make([]int64, n)
			b := make([]int64, n)
			pack := func() int64 {
				return int64(r.intn(2))<<56 | int64(100+r.intn(56))<<48 | (1<<23 | int64(r.intn(1<<23)))
			}
			for i := range a {
				a[i] = pack()
				b[i] = pack()
			}
			exp := make([]int64, n)
			for i := range exp {
				exp[i] = softmulRef(softmulRef(a[i], b[i]), a[i])
			}
			return jrpm.Input{Ints: map[string][]int64{
				"a":        a,
				"b":        b,
				"out":      make([]int64, n),
				"expected": exp,
			}}
		},
		Check: checkIntsEqual("out", "expected"),
	})
}

// ---------------------------------------------------------------------------
// jLex (lexical analyzer generator): NFA-to-DFA subset construction over
// bitmask state sets. The worklist of discovered DFA states grows as the
// outer loop runs — a genuine sequential dependency — while the per-symbol
// and per-NFA-state inner loops parallelize.

const jLexSrc = `
// Subset construction: NFA states fit a 62-bit mask; DFA states are
// discovered by a worklist loop.
global trans: int[];    // nfaState*nsym + sym -> bitmask of next NFA states
global dims: int[];     // [0] = nNFA, [1] = nsym, [2] = max DFA states
global dstates: int[];  // discovered DFA state masks
global dtrans: int[];   // dfaState*nsym + sym -> dfa state index
global out: int[];      // [0] = number of DFA states, [1] = checksum
global expected: int[];

func main() {
	var nnfa: int = dims[0];
	var nsym: int = dims[1];
	var maxd: int = dims[2];
	dstates[0] = 1; // start state = {0}
	var ndfa: int = 1;
	var w: int = 0;
	while (w < ndfa) {
		var cur: int = dstates[w];
		var sym: int = 0;
		while (sym < nsym) {
			// union of transitions from every NFA state in cur
			var next: int = 0;
			var s: int = 0;
			while (s < nnfa) {
				if (((cur >> s) & 1) == 1) {
					next = next | trans[s*nsym + sym];
				}
				s++;
			}
			// look up or add the subset state
			var found: int = -1;
			var d: int = 0;
			while (d < ndfa) {
				if (dstates[d] == next) { found = d; }
				d++;
			}
			if (found == -1) {
				if (ndfa < maxd) {
					dstates[ndfa] = next;
					found = ndfa;
					ndfa++;
				} else {
					found = 0;
				}
			}
			dtrans[w*nsym + sym] = found;
			sym++;
		}
		w++;
	}
	var sum: int = 0;
	var i: int = 0;
	while (i < ndfa*nsym) {
		sum = (sum*31 + dtrans[i]) & 0xffffff;
		i++;
	}
	out[0] = ndfa;
	out[1] = sum;
}
`

func init() {
	register(&Workload{
		Meta: Meta{
			Name:        "jLex",
			Category:    CatInteger,
			Description: "Lexical analyzer gen",
		},
		Source: jLexSrc,
		NewInput: func(scale float64) jrpm.Input {
			r := newRNG(0x17e8)
			nnfa := 24
			nsym := scaled(8, scale, 4)
			maxd := 80
			trans := make([]int64, nnfa*nsym)
			for s := 0; s < nnfa; s++ {
				for y := 0; y < nsym; y++ {
					// sparse transitions: 1-2 target states
					m := int64(1) << uint(r.intn(nnfa))
					if r.intn(2) == 0 {
						m |= int64(1) << uint(r.intn(nnfa))
					}
					trans[s*nsym+y] = m
				}
			}
			// Reference subset construction.
			dstates := make([]int64, maxd)
			dtrans := make([]int64, maxd*nsym)
			dstates[0] = 1
			ndfa := 1
			for w := 0; w < ndfa; w++ {
				cur := dstates[w]
				for sym := 0; sym < nsym; sym++ {
					var next int64
					for s := 0; s < nnfa; s++ {
						if (cur>>uint(s))&1 == 1 {
							next |= trans[s*nsym+sym]
						}
					}
					found := -1
					for d := 0; d < ndfa; d++ {
						if dstates[d] == next {
							found = d
						}
					}
					if found == -1 {
						if ndfa < maxd {
							dstates[ndfa] = next
							found = ndfa
							ndfa++
						} else {
							found = 0
						}
					}
					dtrans[w*nsym+sym] = int64(found)
				}
			}
			var sum int64
			for i := 0; i < ndfa*nsym; i++ {
				sum = (sum*31 + dtrans[i]) & 0xffffff
			}
			return jrpm.Input{Ints: map[string][]int64{
				"trans":    trans,
				"dims":     {int64(nnfa), int64(nsym), int64(maxd)},
				"dstates":  make([]int64, maxd),
				"dtrans":   make([]int64, maxd*nsym),
				"out":      {0, 0},
				"expected": {int64(ndfa), sum},
			}}
		},
		Check: checkIntsEqual("out", "expected"),
	})
}

// ---------------------------------------------------------------------------
// MipsSimulator (course project benchmark in the paper): an instruction-set
// simulator. Each iteration decodes and executes one instruction of a
// pre-generated linear trace against a simulated register file and data
// memory — register reads/writes produce genuine short-distance RAW arcs.

const mipsSimSrc = `
// Simple MIPS-ish ISA simulator over a linear instruction trace.
global prog: int[];   // packed instructions: op<<24 | rd<<16 | rs<<8 | rt  (or imm)
global regs: int[];   // 32 simulated registers
global dmem: int[];   // simulated data memory
global out: int[];    // [0] = register checksum
global expected: int[];

func main() {
	var pc: int = 0;
	var n: int = len(prog);
	var memmask: int = len(dmem) - 1;
	while (pc < n) {
		var insn: int = prog[pc];
		var op: int = (insn >> 24) & 0xff;
		var rd: int = (insn >> 16) & 0xff;
		var rs: int = (insn >> 8) & 0xff;
		var rt: int = insn & 0xff;
		if (op == 0) {            // add
			regs[rd] = regs[rs] + regs[rt];
		} else { if (op == 1) {   // sub
			regs[rd] = regs[rs] - regs[rt];
		} else { if (op == 2) {   // addi (rt = imm)
			regs[rd] = regs[rs] + rt;
		} else { if (op == 3) {   // mul
			regs[rd] = (regs[rs] * regs[rt]) & 0xffffff;
		} else { if (op == 4) {   // load
			regs[rd] = dmem[(regs[rs] + rt) & memmask];
		} else { if (op == 5) {   // store
			dmem[(regs[rs] + rt) & memmask] = regs[rd];
		} else {                  // xor
			regs[rd] = regs[rs] ^ regs[rt];
		}}}}}}
		pc++;
	}
	var sum: int = 0;
	var i: int = 0;
	while (i < 32) {
		sum = (sum*31 + regs[i]) & 0xffffff;
		i++;
	}
	out[0] = sum;
}
`

func init() {
	register(&Workload{
		Meta: Meta{
			Name:        "MipsSimulator",
			Category:    CatInteger,
			Description: "CPU simulator",
		},
		Source: mipsSimSrc,
		NewInput: func(scale float64) jrpm.Input {
			r := newRNG(0x3195)
			n := scaled(9000, scale, 128)
			memSize := 1024
			prog := make([]int64, n)
			for i := range prog {
				op := int64(r.intn(7))
				rd := int64(1 + r.intn(31))
				rs := int64(r.intn(32))
				rt := int64(r.intn(32))
				if op == 2 || op == 4 || op == 5 {
					rt = int64(r.intn(200))
				}
				prog[i] = op<<24 | rd<<16 | rs<<8 | rt
			}
			regs := make([]int64, 32)
			dmem := make([]int64, memSize)
			for i := range dmem {
				dmem[i] = int64(r.intn(1 << 16))
			}
			// Reference execution.
			rr := append([]int64(nil), regs...)
			rm := append([]int64(nil), dmem...)
			mask := int64(memSize - 1)
			for _, insn := range prog {
				op := (insn >> 24) & 0xff
				rd := (insn >> 16) & 0xff
				rs := (insn >> 8) & 0xff
				rt := insn & 0xff
				switch op {
				case 0:
					rr[rd] = rr[rs] + rr[rt]
				case 1:
					rr[rd] = rr[rs] - rr[rt]
				case 2:
					rr[rd] = rr[rs] + rt
				case 3:
					rr[rd] = (rr[rs] * rr[rt]) & 0xffffff
				case 4:
					rr[rd] = rm[(rr[rs]+rt)&mask]
				case 5:
					rm[(rr[rs]+rt)&mask] = rr[rd]
				default:
					rr[rd] = rr[rs] ^ rr[rt]
				}
			}
			var sum int64
			for i := 0; i < 32; i++ {
				sum = (sum*31 + rr[i]) & 0xffffff
			}
			return jrpm.Input{Ints: map[string][]int64{
				"prog":     prog,
				"regs":     regs,
				"dmem":     dmem,
				"out":      {0},
				"expected": {sum},
			}}
		},
		Check: checkIntsEqual("out", "expected"),
	})
}

// ---------------------------------------------------------------------------
// raytrace (jBYTEmark): ray tracer. Each pixel's primary ray is tested
// against a sphere list with full float math (quadratic solve with a
// Newton square root) — independent pixels, an easy STL.

const raytraceSrc = `
// Sphere-list raytracer: one primary ray per pixel, Lambertian shade.
global sx: float[];   // sphere centers / radii
global sy: float[];
global sz: float[];
global sr: float[];
global img: int[];    // output pixel intensities
global dims: int[];   // [0] = width, [1] = height
global expected: int[];

func jsqrt(x: float): float {
	if (x <= 0.0) { return 0.0; }
	var g: float = x;
	if (g > 1.0) { g = g * 0.5; }
	var k: int = 0;
	while (k < 10) {
		g = 0.5 * (g + x / g);
		k++;
	}
	return g;
}

func main() {
	var w: int = dims[0];
	var h: int = dims[1];
	var p: int = 0;
	while (p < w*h) {
		var px: int = p % w;
		var py: int = p / w;
		// ray direction (unnormalized is fine for comparisons)
		var dx: float = (float(px) - float(w)*0.5) / float(w);
		var dy: float = (float(py) - float(h)*0.5) / float(h);
		var dz: float = 1.0;
		var d2: float = dx*dx + dy*dy + dz*dz;
		var best: float = 1000000.0;
		var bi: int = -1;
		var s: int = 0;
		while (s < len(sx)) {
			// |o + t d - c|^2 = r^2 with o at origin
			var b: float = dx*sx[s] + dy*sy[s] + dz*sz[s];
			var c: float = sx[s]*sx[s] + sy[s]*sy[s] + sz[s]*sz[s] - sr[s]*sr[s];
			var disc: float = b*b - d2*c;
			if (disc > 0.0) {
				var t: float = (b - jsqrt(disc)) / d2;
				if (t > 0.0 && t < best) {
					best = t;
					bi = s;
				}
			}
			s++;
		}
		if (bi >= 0) {
			// shade by inverse distance
			var shade: float = 255.0 / (1.0 + best);
			img[p] = int(shade);
		} else {
			img[p] = 0;
		}
		p++;
	}
}
`

func init() {
	register(&Workload{
		Meta: Meta{
			Name:        "raytrace",
			Category:    CatInteger,
			Description: "Raytracer",
		},
		Source: raytraceSrc,
		NewInput: func(scale float64) jrpm.Input {
			r := newRNG(0x4a117ace)
			w := scaled(24, scale, 8)
			h := scaled(18, scale, 6)
			ns := 12
			sx := make([]float64, ns)
			sy := make([]float64, ns)
			sz := make([]float64, ns)
			sr := make([]float64, ns)
			for i := 0; i < ns; i++ {
				sx[i] = r.float()*4 - 2
				sy[i] = r.float()*4 - 2
				sz[i] = 4 + r.float()*6
				sr[i] = 0.3 + r.float()*0.9
			}
			// Reference mirrors the JR float math exactly.
			jsqrt := func(x float64) float64 {
				if x <= 0 {
					return 0
				}
				g := x
				if g > 1 {
					g = g * 0.5
				}
				for k := 0; k < 10; k++ {
					g = 0.5 * (g + x/g)
				}
				return g
			}
			exp := make([]int64, w*h)
			for p := 0; p < w*h; p++ {
				px, py := p%w, p/w
				dx := (float64(px) - float64(w)*0.5) / float64(w)
				dy := (float64(py) - float64(h)*0.5) / float64(h)
				dz := 1.0
				d2 := dx*dx + dy*dy + dz*dz
				best := 1000000.0
				bi := -1
				for s := 0; s < ns; s++ {
					b := dx*sx[s] + dy*sy[s] + dz*sz[s]
					c := sx[s]*sx[s] + sy[s]*sy[s] + sz[s]*sz[s] - sr[s]*sr[s]
					disc := b*b - d2*c
					if disc > 0 {
						t := (b - jsqrt(disc)) / d2
						if t > 0 && t < best {
							best = t
							bi = s
						}
					}
				}
				if bi >= 0 {
					exp[p] = int64(255.0 / (1.0 + best))
				}
			}
			return jrpm.Input{
				Ints: map[string][]int64{
					"img":      make([]int64, w*h),
					"dims":     {int64(w), int64(h)},
					"expected": exp,
				},
				Floats: map[string][]float64{
					"sx": sx, "sy": sy, "sz": sz, "sr": sr,
				},
			}
		},
		Check: checkIntsEqual("img", "expected"),
	})
}
