package workloads

import (
	"fmt"
	"sort"

	"jrpm"
	"jrpm/internal/vmsim"
)

// huffmanSrc is the paper's own running example (Figure 3): a Huffman
// decoder whose outer loop decodes one symbol per iteration by walking the
// code tree bit by bit. The outer loop carries the in_p dependency (each
// iteration consumes a data-dependent number of input bits), which is the
// critical arc TEST must find; out_p is an eliminable inductor.
const huffmanSrc = `
// Huffman decode (Figure 3 of the paper).
global tleft: int[];  // left child per node, -1 at leaves
global tright: int[]; // right child per node
global tchar: int[];  // symbol at leaf nodes
global in: int[];     // encoded bit stream (0/1 per element)
global out: int[];    // decoded symbols
global meta: int[];   // [0] = root node index
global expected: int[]; // harness-side reference output (not read by JR code)

func main() {
	var in_p: int = 0;
	var out_p: int = 0;
	var n: int = 0;
	var root: int = meta[0];
	// outer loop (selected STL)
	do {
		n = root;
		// inner loop: walk the tree one bit at a time
		while (tleft[n] != -1) {
			if (in[in_p] == 0) {
				n = tleft[n];
			} else {
				n = tright[n];
			}
			in_p++;
		}
		out[out_p] = tchar[n];
		out_p++;
	} while (in_p < len(in));
}
`

// huffTree is a Huffman code tree built over symbol frequencies.
type huffTree struct {
	left, right, char []int64
	root              int
	codes             map[int][]int64 // symbol -> bit sequence
}

// buildHuffTree constructs a Huffman tree for nsym symbols with skewed
// (Zipf-ish) frequencies, giving codes of varying length like real text.
func buildHuffTree(nsym int, r *rng) *huffTree {
	type node struct {
		weight      int
		left, right int // -1 for leaves
		sym         int
	}
	nodes := make([]node, 0, 2*nsym-1)
	type qitem struct{ idx, weight int }
	var queue []qitem
	for s := 0; s < nsym; s++ {
		w := 1 + 1000/(s+1) + r.intn(3) // Zipf-ish with a little noise
		nodes = append(nodes, node{weight: w, left: -1, right: -1, sym: s})
		queue = append(queue, qitem{idx: s, weight: w})
	}
	popMin := func() qitem {
		best := 0
		for i := 1; i < len(queue); i++ {
			if queue[i].weight < queue[best].weight {
				best = i
			}
		}
		it := queue[best]
		queue = append(queue[:best], queue[best+1:]...)
		return it
	}
	for len(queue) > 1 {
		a := popMin()
		b := popMin()
		nodes = append(nodes, node{weight: a.weight + b.weight, left: a.idx, right: b.idx, sym: -1})
		queue = append(queue, qitem{idx: len(nodes) - 1, weight: a.weight + b.weight})
	}
	t := &huffTree{
		left:  make([]int64, len(nodes)),
		right: make([]int64, len(nodes)),
		char:  make([]int64, len(nodes)),
		root:  queue[0].idx,
		codes: map[int][]int64{},
	}
	for i, n := range nodes {
		t.left[i] = int64(n.left)
		t.right[i] = int64(n.right)
		t.char[i] = int64(n.sym)
	}
	var walk func(idx int, prefix []int64)
	walk = func(idx int, prefix []int64) {
		n := nodes[idx]
		if n.left == -1 {
			t.codes[n.sym] = append([]int64(nil), prefix...)
			return
		}
		walk(n.left, append(prefix, 0))
		walk(n.right, append(prefix, 1))
	}
	walk(t.root, nil)
	return t
}

// encode produces the bit stream and the expected decoded symbols.
func (t *huffTree) encode(nMsg int, nsym int, r *rng) (bits, syms []int64) {
	// Skewed symbol draw matching the build frequencies.
	weights := make([]int, nsym)
	total := 0
	for s := 0; s < nsym; s++ {
		weights[s] = 1 + 1000/(s+1)
		total += weights[s]
	}
	cum := make([]int, nsym)
	acc := 0
	for s := 0; s < nsym; s++ {
		acc += weights[s]
		cum[s] = acc
	}
	for i := 0; i < nMsg; i++ {
		x := r.intn(total)
		s := sort.SearchInts(cum, x+1)
		syms = append(syms, int64(s))
		bits = append(bits, t.codes[s]...)
	}
	return bits, syms
}

func init() {
	register(&Workload{
		Meta: Meta{
			Name:        "Huffman",
			Category:    CatInteger,
			Description: "Compression",
		},
		Source: huffmanSrc,
		NewInput: func(scale float64) jrpm.Input {
			r := newRNG(0x48554646)
			nsym := 24
			tree := buildHuffTree(nsym, r)
			nMsg := scaled(2500, scale, 16)
			bits, syms := tree.encode(nMsg, nsym, r)
			return jrpm.Input{Ints: map[string][]int64{
				"tleft":  tree.left,
				"tright": tree.right,
				"tchar":  tree.char,
				"in":     bits,
				"out":    make([]int64, len(syms)),
				"meta":   {int64(tree.root)},
				// expected is harness-side only; bound so Check can
				// compare without re-encoding.
				"expected": syms,
			}}
		},
		Check: checkHuffman,
	})
}

func checkHuffman(vm *vmsim.VM) error {
	got, err := vm.GlobalInts("out")
	if err != nil {
		return err
	}
	want, err := vm.GlobalInts("expected")
	if err != nil {
		return err
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("huffman: out[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	return nil
}
