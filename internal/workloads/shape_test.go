package workloads_test

import (
	"testing"

	"jrpm"
	"jrpm/internal/workloads"
)

// shape describes per-benchmark expectations for the full pipeline at the
// test scale: the qualitative facts Table 6 / Figures 10-11 assert for
// each program.
type shape struct {
	// minActual/maxActual bound the TLS-simulated whole-program speedup.
	minActual, maxActual float64
	// maxPredActualGap bounds |predicted - actual| normalized-time gap.
	maxPredActualGap float64
	// minSelected STLs expected.
	minSelected int
	// serial marks benchmarks that must retain an uncovered serial part.
	serialAbove float64
}

var shapes = map[string]shape{
	// Highly parallel kernels: near the 4-CPU bound.
	"IDEA":        {minActual: 3.5, maxActual: 4.0, maxPredActualGap: 0.08, minSelected: 1},
	"EmFloatPnt":  {minActual: 3.5, maxActual: 4.0, maxPredActualGap: 0.08, minSelected: 1},
	"FourierTest": {minActual: 3.5, maxActual: 4.0, maxPredActualGap: 0.08, minSelected: 1},
	"monteCarlo":  {minActual: 3.3, maxActual: 4.0, maxPredActualGap: 0.08, minSelected: 1},
	"raytrace":    {minActual: 3.0, maxActual: 4.0, maxPredActualGap: 0.10, minSelected: 1},
	"decJpeg":     {minActual: 3.5, maxActual: 4.0, maxPredActualGap: 0.08, minSelected: 1},
	"encJpeg":     {minActual: 3.4, maxActual: 4.0, maxPredActualGap: 0.08, minSelected: 1},
	"h263dec":     {minActual: 3.5, maxActual: 4.0, maxPredActualGap: 0.08, minSelected: 1},
	"shallow":     {minActual: 3.0, maxActual: 4.0, maxPredActualGap: 0.10, minSelected: 2},

	// Dependence-limited kernels: real but modest speedups.
	"Huffman":  {minActual: 1.1, maxActual: 1.8, maxPredActualGap: 0.10, minSelected: 1},
	"compress": {minActual: 1.0, maxActual: 1.6, maxPredActualGap: 0.20, minSelected: 1},

	// Mixed / multi-STL programs.
	"Assignment":    {minActual: 2.5, maxActual: 4.0, maxPredActualGap: 0.15, minSelected: 2},
	"BitOps":        {minActual: 2.0, maxActual: 4.0, maxPredActualGap: 0.15, minSelected: 2},
	"db":            {minActual: 2.8, maxActual: 4.0, maxPredActualGap: 0.10, minSelected: 1},
	"deltaBlue":     {minActual: 2.0, maxActual: 4.0, maxPredActualGap: 0.12, minSelected: 1},
	"jess":          {minActual: 2.0, maxActual: 4.0, maxPredActualGap: 0.15, minSelected: 1},
	"jLex":          {minActual: 2.0, maxActual: 4.0, maxPredActualGap: 0.15, minSelected: 1},
	"MipsSimulator": {minActual: 2.5, maxActual: 4.0, maxPredActualGap: 0.12, minSelected: 1},
	"NumHeapSort":   {minActual: 2.5, maxActual: 4.0, maxPredActualGap: 0.12, minSelected: 2},
	"euler":         {minActual: 2.8, maxActual: 4.0, maxPredActualGap: 0.10, minSelected: 2},
	"LuFactor":      {minActual: 2.5, maxActual: 4.0, maxPredActualGap: 0.12, minSelected: 1},
	"moldyn":        {minActual: 2.0, maxActual: 4.0, maxPredActualGap: 0.15, minSelected: 2},
	"NeuralNet":     {minActual: 1.8, maxActual: 4.0, maxPredActualGap: 0.25, minSelected: 1},
	"mpegVideo":     {minActual: 2.8, maxActual: 4.0, maxPredActualGap: 0.12, minSelected: 1},

	// Programs with serial phases the STLs cannot cover.
	"fft": {minActual: 1.5, maxActual: 3.5, maxPredActualGap: 0.15, minSelected: 1, serialAbove: 0.05},
	"mp3": {minActual: 2.0, maxActual: 4.0, maxPredActualGap: 0.12, minSelected: 1},
}

// TestPerBenchmarkShapes runs each benchmark end to end and checks the
// qualitative result the paper reports for its class.
func TestPerBenchmarkShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline sweep")
	}
	for _, w := range workloads.All() {
		w := w
		sh, ok := shapes[w.Meta.Name]
		if !ok {
			t.Errorf("no shape expectation for %s", w.Meta.Name)
			continue
		}
		t.Run(w.Meta.Name, func(t *testing.T) {
			in := w.NewInput(0.5)
			res, err := jrpm.Run(w.Source, in, jrpm.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			an := res.Profile.Analysis

			if res.ActualSpeedup < sh.minActual || res.ActualSpeedup > sh.maxActual+1e-9 {
				t.Errorf("actual speedup %.2fx outside [%.1f, %.1f]",
					res.ActualSpeedup, sh.minActual, sh.maxActual)
			}
			if len(an.Selected) < sh.minSelected {
				t.Errorf("selected %d STLs, want >= %d", len(an.Selected), sh.minSelected)
			}
			pred := an.PredictedCycles / float64(res.Profile.CleanCycles)
			act := res.ActualCycles / float64(res.Profile.CleanCycles)
			if gap := abs(pred - act); gap > sh.maxPredActualGap {
				t.Errorf("prediction gap %.3f (pred %.3f, actual %.3f) exceeds %.2f",
					gap, pred, act, sh.maxPredActualGap)
			}
			if sh.serialAbove > 0 {
				covered := 0.0
				for _, n := range an.Selected {
					covered += float64(n.Stats.Cycles) / float64(an.TotalCycles)
				}
				if serial := 1 - covered; serial < sh.serialAbove {
					t.Errorf("serial fraction %.3f, expected > %.2f", serial, sh.serialAbove)
				}
			}
		})
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
