package tir

import "fmt"

// Validate checks the structural invariants every TIR program must satisfy
// before it can be executed or analyzed:
//
//   - every block ends with exactly one terminator, and terminators appear
//     nowhere else;
//   - branch target counts match the terminator arity and point at existing
//     blocks;
//   - register, slot, function and global indices are in range;
//   - loop annotation instructions reference loops in the program table.
//
// It returns the first violation found.
func Validate(p *Program) error {
	for fi, f := range p.Funcs {
		if len(f.Blocks) == 0 {
			return fmt.Errorf("func %s: no blocks", f.Name)
		}
		if f.Params > len(f.Locals) {
			return fmt.Errorf("func %s: %d params but %d locals", f.Name, f.Params, len(f.Locals))
		}
		for bi := range f.Blocks {
			if err := validateBlock(p, f, fi, bi); err != nil {
				return err
			}
		}
	}
	return nil
}

func validateBlock(p *Program, f *Function, fi, bi int) error {
	b := &f.Blocks[bi]
	where := func(ii int) string { return fmt.Sprintf("func %s b%d i%d", f.Name, bi, ii) }
	if len(b.Instrs) == 0 {
		return fmt.Errorf("func %s b%d: empty block", f.Name, bi)
	}
	for ii := range b.Instrs {
		in := &b.Instrs[ii]
		last := ii == len(b.Instrs)-1
		if IsTerminator(in.Op) != last {
			if last {
				return fmt.Errorf("%s: block does not end in a terminator (%s)", where(ii), in.Op)
			}
			return fmt.Errorf("%s: terminator %s in middle of block", where(ii), in.Op)
		}
		ckReg := func(r Reg, what string) error {
			if r < 0 || int(r) >= f.NumRegs {
				return fmt.Errorf("%s: %s register r%d out of range [0,%d)", where(ii), what, r, f.NumRegs)
			}
			return nil
		}
		ckSlot := func() error {
			if in.Slot < 0 || in.Slot >= len(f.Locals) {
				return fmt.Errorf("%s: slot s%d out of range [0,%d)", where(ii), in.Slot, len(f.Locals))
			}
			return nil
		}
		ckLoop := func() error {
			if in.Loop < 0 || in.Loop >= len(p.Loops) {
				return fmt.Errorf("%s: loop L%d out of range [0,%d)", where(ii), in.Loop, len(p.Loops))
			}
			return nil
		}
		var err error
		switch in.Op {
		case OpNop:
		case OpConstI, OpConstF:
			err = ckReg(in.Dst, "dst")
		case OpMov, OpNeg, OpNot, OpFNeg, OpI2F, OpF2I, OpLoad, OpArrLen, OpNewArr:
			if err = ckReg(in.Dst, "dst"); err == nil {
				err = ckReg(in.A, "src")
			}
		case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpAnd, OpOr, OpXor, OpShl, OpShr,
			OpFAdd, OpFSub, OpFMul, OpFDiv,
			OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpFEq, OpFNe, OpFLt, OpFLe, OpFGt, OpFGe:
			if err = ckReg(in.Dst, "dst"); err == nil {
				if err = ckReg(in.A, "a"); err == nil {
					err = ckReg(in.B, "b")
				}
			}
		case OpStore:
			if err = ckReg(in.A, "addr"); err == nil {
				err = ckReg(in.B, "val")
			}
		case OpLdLoc:
			if err = ckReg(in.Dst, "dst"); err == nil {
				err = ckSlot()
			}
		case OpStLoc:
			if err = ckReg(in.A, "src"); err == nil {
				err = ckSlot()
			}
		case OpLdGlob:
			if err = ckReg(in.Dst, "dst"); err == nil {
				if in.Imm < 0 || int(in.Imm) >= len(p.Globals) {
					err = fmt.Errorf("%s: global g%d out of range [0,%d)", where(ii), in.Imm, len(p.Globals))
				}
			}
		case OpBr:
			if len(b.Targets) != 1 {
				err = fmt.Errorf("%s: br needs 1 target, block has %d", where(ii), len(b.Targets))
			}
		case OpBrIf:
			if err = ckReg(in.A, "cond"); err == nil && len(b.Targets) != 2 {
				err = fmt.Errorf("%s: brif needs 2 targets, block has %d", where(ii), len(b.Targets))
			}
		case OpRet:
			if len(b.Targets) != 0 {
				err = fmt.Errorf("%s: ret must have 0 targets, block has %d", where(ii), len(b.Targets))
			} else if in.HasVal {
				err = ckReg(in.A, "result")
			}
		case OpCall:
			if in.Func < 0 || in.Func >= len(p.Funcs) {
				err = fmt.Errorf("%s: callee f%d out of range [0,%d)", where(ii), in.Func, len(p.Funcs))
				break
			}
			callee := p.Funcs[in.Func]
			if len(in.Args) != callee.Params {
				err = fmt.Errorf("%s: call %s with %d args, want %d", where(ii), callee.Name, len(in.Args), callee.Params)
				break
			}
			for _, a := range in.Args {
				if err = ckReg(a, "arg"); err != nil {
					break
				}
			}
			if err == nil && in.Dst != NoReg {
				err = ckReg(in.Dst, "dst")
			}
		case OpPrint:
			err = ckReg(in.A, "val")
		case OpSLoop, OpELoop, OpEOI, OpReadStats:
			err = ckLoop()
		case OpLWL, OpSWL:
			err = ckSlot()
		default:
			err = fmt.Errorf("%s: unknown opcode %d", where(ii), uint8(in.Op))
		}
		if err != nil {
			return err
		}
	}
	for _, t := range b.Targets {
		if t < 0 || t >= len(f.Blocks) {
			return fmt.Errorf("func %s b%d: target b%d out of range", f.Name, bi, t)
		}
	}
	_ = fi
	return nil
}
