// Package tir defines the Tiny Intermediate Representation: the
// register-machine bytecode that the JR compiler targets and that the
// sequential VM (internal/vmsim) executes.
//
// TIR plays the role of the annotated native MIPS code in the paper: it
// carries ordinary computation instructions plus the TEST annotating
// instructions of Table 4 (sloop, eloop, eoi, lwl, swl and the
// read-statistics call) that the annotation pass (internal/annotate)
// inserts around potential speculative thread loops.
//
// Functions are built from explicit basic blocks. Every block ends with a
// terminator (Br, BrIf or Ret); there is no fallthrough. Values live in
// per-frame virtual registers; *named* local variables additionally live in
// numbered slots so that local-variable accesses remain visible events for
// the tracer (the paper distinguishes named locals, which can carry
// loop-borne dependencies, from block-local temporaries, which cannot).
package tir

import "fmt"

// Op enumerates TIR opcodes.
type Op uint8

// Opcode space. Integer values are stored as int64, floats as float64; a
// register holds the raw 64-bit pattern and the opcode fixes the
// interpretation (as in a real ISA).
const (
	OpNop Op = iota

	// Constants and moves.
	OpConstI // dst <- Imm
	OpConstF // dst <- FImm
	OpMov    // dst <- a

	// Integer arithmetic.
	OpAdd // dst <- a + b
	OpSub
	OpMul
	OpDiv // traps on zero divisor
	OpMod // traps on zero divisor
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr // arithmetic shift right
	OpNeg // dst <- -a
	OpNot // dst <- !a (logical: a==0 -> 1 else 0)

	// Float arithmetic.
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFNeg

	// Comparisons produce 0/1 ints.
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpFEq
	OpFNe
	OpFLt
	OpFLe
	OpFGt
	OpFGe

	// Conversions.
	OpI2F // dst <- float(a)
	OpF2I // dst <- int(a), truncating

	// Named-local access. Slot selects the local.
	OpLdLoc // dst <- slot
	OpStLoc // slot <- a

	// Global array handles.
	OpLdGlob // dst <- base address of global array Imm

	// Heap access. Addresses are byte addresses; each element occupies a
	// 4-byte word (Hydra is a 32-bit MIPS CMP), 8 words per 32-byte cache
	// line. a holds the address.
	OpLoad   // dst <- mem[a]
	OpStore  // mem[a] <- b
	OpArrLen // dst <- length (in elements) of array with base address a
	OpNewArr // dst <- base address of fresh array of a elements

	// Control flow (terminators).
	OpBr   // goto Targets[0]
	OpBrIf // if a != 0 goto Targets[0] else Targets[1]
	OpRet  // return a (HasVal) or nothing

	// Calls.
	OpCall // dst <- Funcs[Func](Args...)

	// Debug output.
	OpPrint // print a (int or float per IsF)

	// TEST annotating instructions (Table 4).
	OpSLoop     // enter potential STL Loop; reserve Imm local timestamps
	OpELoop     // exit potential STL Loop; free Imm local timestamps
	OpEOI       // end-of-iteration for STL Loop
	OpLWL       // local variable load annotation for Slot
	OpSWL       // local variable store annotation for Slot
	OpReadStats // read collected statistics for STL Loop (software routine)
)

// Reg is a virtual register index within a frame.
type Reg int32

// NoReg marks an unused register operand.
const NoReg Reg = -1

// Instr is one TIR instruction. Fields are used per-opcode; unused fields
// are zero. PC is a program-wide unique id assigned by Program.AssignPCs
// and is what the extended tracer bins dependency arcs by.
type Instr struct {
	Op     Op
	Dst    Reg
	A, B   Reg
	Imm    int64
	FImm   float64
	Slot   int   // named-local slot for LdLoc/StLoc/LWL/SWL
	Func   int   // callee index for Call
	Loop   int   // static loop id for SLoop/ELoop/EOI/ReadStats
	Args   []Reg // Call arguments
	HasVal bool  // Ret carries a value
	IsF    bool  // Print/Ret value is a float
	PC     int   // program-wide instruction id
	Line   int   // source line, 0 if unknown
}

// Block is a basic block: straight-line instructions ending in exactly one
// terminator, whose successor block indices live in Targets.
type Block struct {
	Instrs  []Instr
	Targets []int // successor block indices (empty for Ret)
}

// Terminator returns the block's final instruction.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	return &b.Instrs[len(b.Instrs)-1]
}

// IsTerminator reports whether op ends a basic block.
func IsTerminator(op Op) bool {
	return op == OpBr || op == OpBrIf || op == OpRet
}

// Kind is a JR value kind as seen by TIR (used for globals and function
// signatures; registers themselves are untyped bit patterns).
type Kind uint8

// Value kinds.
const (
	KindInt Kind = iota
	KindFloat
	KindBool
	KindIntArr
	KindFloatArr
)

func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	case KindIntArr:
		return "int[]"
	case KindFloatArr:
		return "float[]"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Local describes one named local variable (or parameter) of a function.
type Local struct {
	Name  string
	Kind  Kind
	Param bool
}

// Function is a compiled JR function.
type Function struct {
	Name    string
	Params  int // first Params locals are parameters
	Locals  []Local
	NumRegs int
	Blocks  []Block
	Result  Kind
	HasRes  bool
}

// GlobalArray is a harness-bound array global.
type GlobalArray struct {
	Name string
	Kind Kind // KindIntArr or KindFloatArr
}

// LoopInfo records one potential STL discovered by the compiler. IDs are
// dense program-wide. The annotation pass fills this table.
type LoopInfo struct {
	ID          int
	Func        int    // owning function index
	Header      int    // header block index within the function
	Name        string // "func:line" style label for reports
	Line        int
	StaticDepth int    // nesting depth within its function (outermost = 1)
	Blocks      []int  // member block indices
	NumLocals   int    // annotated local-variable timestamp reservations
	AnnLocals   []int  // named-local slots tracked for this loop
	Hoisted     bool   // read-statistics call hoisted out of this loop
	Candidate   bool   // passed the scalar screen of section 4.1
	Reject      string // why the scalar screen rejected it, if it did
}

// Program is a complete compiled JR program.
//
// Concurrency contract: a Program is read-only once the compile stage
// (lang.Compile + opt.Program + annotate.Apply) has finished. The VM
// (vmsim), tracer (core), recorder (tls), recompiler (jit) and profile
// analysis only read it, so one Program — and the jrpm.Compiled artifact
// wrapping it — may be shared across any number of goroutines without
// locking. This is what lets the jrpmd artifact cache hand the same
// compiled program to every worker; TestCompiledSharedAcrossGoroutines
// enforces it under the race detector. Passes that mutate a Program
// (annotate.Apply, opt.Program) must run before it is published.
type Program struct {
	Funcs     []*Function
	FuncIndex map[string]int
	Globals   []GlobalArray
	GlobIndex map[string]int
	Loops     []LoopInfo
	NumPCs    int
}

// Lookup returns the function with the given name.
func (p *Program) Lookup(name string) (*Function, int, bool) {
	i, ok := p.FuncIndex[name]
	if !ok {
		return nil, 0, false
	}
	return p.Funcs[i], i, true
}

// AssignPCs numbers every instruction with a program-wide unique PC and
// records the count. Call after all passes that insert instructions.
func (p *Program) AssignPCs() {
	pc := 0
	for _, f := range p.Funcs {
		for bi := range f.Blocks {
			b := &f.Blocks[bi]
			for ii := range b.Instrs {
				b.Instrs[ii].PC = pc
				pc++
			}
		}
	}
	p.NumPCs = pc
}

// FindPC returns the function name and source line of a program-wide PC,
// for mapping the extended tracer's per-PC dependency bins back to source
// (section 6.3's programmer feedback).
func (p *Program) FindPC(pc int) (fn string, line int, ok bool) {
	for _, f := range p.Funcs {
		for bi := range f.Blocks {
			for ii := range f.Blocks[bi].Instrs {
				in := &f.Blocks[bi].Instrs[ii]
				if in.PC == pc {
					return f.Name, in.Line, true
				}
			}
		}
	}
	return "", 0, false
}

// NumInstrs counts instructions across the whole program.
func (p *Program) NumInstrs() int {
	n := 0
	for _, f := range p.Funcs {
		n += f.NumInstrs()
	}
	return n
}

// NumInstrs counts the function's instructions across all blocks. The
// VM's decode stage uses it to size the flat pre-decoded instruction
// stream before lowering.
func (f *Function) NumInstrs() int {
	n := 0
	for bi := range f.Blocks {
		n += len(f.Blocks[bi].Instrs)
	}
	return n
}
