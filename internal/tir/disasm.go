package tir

import (
	"fmt"
	"strings"
)

var opNames = map[Op]string{
	OpNop:       "nop",
	OpConstI:    "consti",
	OpConstF:    "constf",
	OpMov:       "mov",
	OpAdd:       "add",
	OpSub:       "sub",
	OpMul:       "mul",
	OpDiv:       "div",
	OpMod:       "mod",
	OpAnd:       "and",
	OpOr:        "or",
	OpXor:       "xor",
	OpShl:       "shl",
	OpShr:       "shr",
	OpNeg:       "neg",
	OpNot:       "not",
	OpFAdd:      "fadd",
	OpFSub:      "fsub",
	OpFMul:      "fmul",
	OpFDiv:      "fdiv",
	OpFNeg:      "fneg",
	OpEq:        "eq",
	OpNe:        "ne",
	OpLt:        "lt",
	OpLe:        "le",
	OpGt:        "gt",
	OpGe:        "ge",
	OpFEq:       "feq",
	OpFNe:       "fne",
	OpFLt:       "flt",
	OpFLe:       "fle",
	OpFGt:       "fgt",
	OpFGe:       "fge",
	OpI2F:       "i2f",
	OpF2I:       "f2i",
	OpLdLoc:     "ldloc",
	OpStLoc:     "stloc",
	OpLdGlob:    "ldglob",
	OpLoad:      "load",
	OpStore:     "store",
	OpArrLen:    "arrlen",
	OpNewArr:    "newarr",
	OpBr:        "br",
	OpBrIf:      "brif",
	OpRet:       "ret",
	OpCall:      "call",
	OpPrint:     "print",
	OpSLoop:     "sloop",
	OpELoop:     "eloop",
	OpEOI:       "eoi",
	OpLWL:       "lwl",
	OpSWL:       "swl",
	OpReadStats: "readstats",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// String renders one instruction in a readable assembly-like form. Branch
// targets are printed from the enclosing block's Targets by Disasm; here a
// terminator prints only its operands.
func (in *Instr) String() string {
	switch in.Op {
	case OpConstI:
		return fmt.Sprintf("r%d = consti %d", in.Dst, in.Imm)
	case OpConstF:
		return fmt.Sprintf("r%d = constf %g", in.Dst, in.FImm)
	case OpMov:
		return fmt.Sprintf("r%d = mov r%d", in.Dst, in.A)
	case OpNeg, OpNot, OpFNeg, OpI2F, OpF2I, OpArrLen, OpNewArr, OpLoad:
		return fmt.Sprintf("r%d = %s r%d", in.Dst, in.Op, in.A)
	case OpStore:
		return fmt.Sprintf("store [r%d] = r%d", in.A, in.B)
	case OpLdLoc:
		return fmt.Sprintf("r%d = ldloc s%d", in.Dst, in.Slot)
	case OpStLoc:
		return fmt.Sprintf("stloc s%d = r%d", in.Slot, in.A)
	case OpLdGlob:
		return fmt.Sprintf("r%d = ldglob g%d", in.Dst, in.Imm)
	case OpBr:
		return "br"
	case OpBrIf:
		return fmt.Sprintf("brif r%d", in.A)
	case OpRet:
		if in.HasVal {
			return fmt.Sprintf("ret r%d", in.A)
		}
		return "ret"
	case OpCall:
		args := make([]string, len(in.Args))
		for i, a := range in.Args {
			args[i] = fmt.Sprintf("r%d", a)
		}
		if in.Dst != NoReg {
			return fmt.Sprintf("r%d = call f%d(%s)", in.Dst, in.Func, strings.Join(args, ", "))
		}
		return fmt.Sprintf("call f%d(%s)", in.Func, strings.Join(args, ", "))
	case OpPrint:
		return fmt.Sprintf("print r%d", in.A)
	case OpSLoop:
		return fmt.Sprintf("sloop L%d, %d", in.Loop, in.Imm)
	case OpELoop:
		return fmt.Sprintf("eloop L%d, %d", in.Loop, in.Imm)
	case OpEOI:
		return fmt.Sprintf("eoi L%d", in.Loop)
	case OpLWL:
		return fmt.Sprintf("lwl s%d", in.Slot)
	case OpSWL:
		return fmt.Sprintf("swl s%d", in.Slot)
	case OpReadStats:
		return fmt.Sprintf("readstats L%d", in.Loop)
	case OpNop:
		return "nop"
	default:
		return fmt.Sprintf("r%d = %s r%d, r%d", in.Dst, in.Op, in.A, in.B)
	}
}

// Disasm renders a whole function, with block labels and branch targets.
func Disasm(f *Function) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s (params=%d, locals=%d, regs=%d)\n", f.Name, f.Params, len(f.Locals), f.NumRegs)
	for bi := range f.Blocks {
		b := &f.Blocks[bi]
		fmt.Fprintf(&sb, "b%d:\n", bi)
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			s := in.String()
			if in.Op == OpBr && len(b.Targets) == 1 {
				s = fmt.Sprintf("br b%d", b.Targets[0])
			} else if in.Op == OpBrIf && len(b.Targets) == 2 {
				s = fmt.Sprintf("brif r%d, b%d, b%d", in.A, b.Targets[0], b.Targets[1])
			}
			fmt.Fprintf(&sb, "\t%s\n", s)
		}
	}
	return sb.String()
}

// DisasmProgram renders every function in the program.
func DisasmProgram(p *Program) string {
	var sb strings.Builder
	for _, f := range p.Funcs {
		sb.WriteString(Disasm(f))
		sb.WriteByte('\n')
	}
	return sb.String()
}
