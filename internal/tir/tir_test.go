package tir_test

import (
	"strings"
	"testing"

	"jrpm/internal/lang"
	"jrpm/internal/tir"
)

func makeFunc(blocks []tir.Block) *tir.Program {
	f := &tir.Function{Name: "f", NumRegs: 4, Blocks: blocks}
	return &tir.Program{Funcs: []*tir.Function{f}, FuncIndex: map[string]int{"f": 0}}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	p := makeFunc([]tir.Block{
		{Instrs: []tir.Instr{
			{Op: tir.OpConstI, Dst: 0, Imm: 1},
			{Op: tir.OpBrIf, A: 0},
		}, Targets: []int{1, 1}},
		{Instrs: []tir.Instr{{Op: tir.OpRet}}},
	})
	if err := tir.Validate(p); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		prog *tir.Program
		want string
	}{
		{
			"no terminator",
			makeFunc([]tir.Block{{Instrs: []tir.Instr{{Op: tir.OpConstI, Dst: 0}}}}),
			"does not end in a terminator",
		},
		{
			"terminator mid-block",
			makeFunc([]tir.Block{{Instrs: []tir.Instr{
				{Op: tir.OpRet}, {Op: tir.OpRet},
			}}}),
			"terminator",
		},
		{
			"register out of range",
			makeFunc([]tir.Block{{Instrs: []tir.Instr{
				{Op: tir.OpConstI, Dst: 99},
				{Op: tir.OpRet},
			}}}),
			"out of range",
		},
		{
			"br target count",
			makeFunc([]tir.Block{{Instrs: []tir.Instr{{Op: tir.OpBr}}}}),
			"br needs 1 target",
		},
		{
			"brif target count",
			makeFunc([]tir.Block{{Instrs: []tir.Instr{{Op: tir.OpBrIf, A: 0}}, Targets: []int{0}}}),
			"brif needs 2 targets",
		},
		{
			"target out of range",
			makeFunc([]tir.Block{{Instrs: []tir.Instr{{Op: tir.OpBr}}, Targets: []int{7}}}),
			"target b7 out of range",
		},
		{
			"empty block",
			makeFunc([]tir.Block{{}}),
			"empty block",
		},
		{
			"slot out of range",
			makeFunc([]tir.Block{{Instrs: []tir.Instr{
				{Op: tir.OpLdLoc, Dst: 0, Slot: 5},
				{Op: tir.OpRet},
			}}}),
			"slot s5 out of range",
		},
		{
			"loop id out of range",
			makeFunc([]tir.Block{{Instrs: []tir.Instr{
				{Op: tir.OpSLoop, Loop: 3},
				{Op: tir.OpRet},
			}}}),
			"loop L3 out of range",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := tir.Validate(c.prog)
			if err == nil {
				t.Fatal("invalid program accepted")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestAssignPCsAndFindPC(t *testing.T) {
	prog, err := lang.Compile(`
global a: int[];
func helper(x: int): int { return x * 2; }
func main() {
	var i: int = 0;
	while (i < 4) {
		a[i] = helper(i);
		i++;
	}
}`)
	if err != nil {
		t.Fatal(err)
	}
	// PCs must be dense and unique.
	seen := map[int]bool{}
	n := 0
	for _, f := range prog.Funcs {
		for bi := range f.Blocks {
			for ii := range f.Blocks[bi].Instrs {
				pc := f.Blocks[bi].Instrs[ii].PC
				if seen[pc] {
					t.Fatalf("duplicate pc %d", pc)
				}
				seen[pc] = true
				n++
			}
		}
	}
	if n != prog.NumPCs {
		t.Fatalf("NumPCs = %d, counted %d", prog.NumPCs, n)
	}
	// FindPC maps back to the right function.
	fn, line, ok := prog.FindPC(0)
	if !ok || fn == "" || line == 0 {
		t.Fatalf("FindPC(0) = %q/%d/%v", fn, line, ok)
	}
	if _, _, ok := prog.FindPC(1 << 30); ok {
		t.Fatal("FindPC of a bogus pc succeeded")
	}
}

func TestDisasmMentionsEverything(t *testing.T) {
	prog, err := lang.Compile(`
global a: int[];
func main() {
	var i: int = 0;
	var f: float = 1.5;
	while (i < len(a)) {
		a[i] = a[i] + int(f);
		i++;
	}
	print(i);
}`)
	if err != nil {
		t.Fatal(err)
	}
	d := tir.DisasmProgram(prog)
	for _, want := range []string{"func main", "consti", "constf", "ldloc", "stloc", "load", "store", "brif", "ret", "f2i", "print", "arrlen", "ldglob"} {
		if !strings.Contains(d, want) {
			t.Errorf("disassembly missing %q:\n%s", want, d)
		}
	}
}

func TestKindStrings(t *testing.T) {
	want := map[tir.Kind]string{
		tir.KindInt: "int", tir.KindFloat: "float", tir.KindBool: "bool",
		tir.KindIntArr: "int[]", tir.KindFloatArr: "float[]",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind %d = %q, want %q", k, k.String(), s)
		}
	}
}

func TestLookup(t *testing.T) {
	prog, err := lang.Compile(`func main() { } func other() { }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := prog.Lookup("other"); !ok {
		t.Fatal("Lookup(other) failed")
	}
	if _, _, ok := prog.Lookup("missing"); ok {
		t.Fatal("Lookup(missing) succeeded")
	}
}
