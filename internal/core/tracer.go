// Package core implements TEST — the Tracer for Extracting Speculative
// Threads — the paper's primary contribution (sections 4.2 and 5).
//
// The tracer watches a sequentially executing annotated program and, for
// every active potential STL, runs two analyses in its comparator banks:
//
//   - the load dependency analysis (§4.2.1, Figure 3): every load
//     retrieves the timestamp of the last store to the same address from
//     the repurposed speculative store buffers; comparing it against the
//     bank's thread-start timestamps classifies the dependency arc into
//     the "previous thread" (t−1) or "earlier thread" (<t−1) bin, and the
//     shortest arc per thread — the critical arc — is accumulated;
//
//   - the speculative state overflow analysis (§4.2.2, Figure 4): every
//     access checks a direct-mapped cache-line timestamp buffer; lines not
//     yet touched by the current thread bump per-thread load/store line
//     counters, and exceeding the Table 1 buffer limits counts an
//     overflow.
//
// Bank allocation follows §5.2: banks are claimed stack-wise as loops are
// entered (outermost first), deeper loops go untraced when no bank or no
// local-variable timestamp space is left, persistently overflowing loops
// release their bank to deeper loops, and loops with enough collected data
// have their annotations disabled.
package core

import (
	"jrpm/internal/hydra"
	"jrpm/internal/tir"
	"jrpm/internal/vmsim"
)

// Bins for dependency arcs.
const (
	BinPrev    = 0 // arc to thread t-1
	BinEarlier = 1 // arc to a thread before t-1
)

// PCArcStats is the extended tracer's per-load-PC dependency bin
// (Figure 8b): critical arcs binned by the load instruction PC so a
// compiler or programmer can find the one or two loads that serialize a
// loop (§6.3).
type PCArcStats struct {
	Count  int64
	LenSum int64
	MinLen int64
}

// LoopStats is the software-visible statistics record for one static loop,
// accumulated from its comparator bank at read-statistics time. Field
// names follow the counter table of Figure 3.
type LoopStats struct {
	Loop    int
	Cycles  int64 // elapsed cycles inside the loop
	Threads int64
	Entries int64
	// ArcCount/ArcLenSum are indexed by BinPrev / BinEarlier.
	ArcCount  [2]int64
	ArcLenSum [2]int64
	Overflows int64 // threads that exceeded a speculative buffer limit
	// Capacity high-water marks (diagnostics).
	MaxLdLines int
	MaxStLines int
	// SkippedEntries counts loop entries that ran untraced because no
	// comparator bank (or local timestamp space) was available.
	SkippedEntries int64
	// PCArcs is only filled by the extended tracer.
	PCArcs map[int]*PCArcStats
}

func (s *LoopStats) add(o *LoopStats) {
	s.Cycles += o.Cycles
	s.Threads += o.Threads
	s.Entries += o.Entries
	for b := 0; b < 2; b++ {
		s.ArcCount[b] += o.ArcCount[b]
		s.ArcLenSum[b] += o.ArcLenSum[b]
	}
	s.Overflows += o.Overflows
	if o.MaxLdLines > s.MaxLdLines {
		s.MaxLdLines = o.MaxLdLines
	}
	if o.MaxStLines > s.MaxStLines {
		s.MaxStLines = o.MaxStLines
	}
}

// Options tunes runtime-system policies that the paper describes
// qualitatively.
type Options struct {
	// Extended enables per-load-PC arc binning (Figure 8b).
	Extended bool
	// ThreadQuota disables a loop's tracing after this many threads have
	// been observed ("when sufficient data has been collected ... the
	// annotations marking it can be disabled dynamically"). 0 = never.
	ThreadQuota int64
	// OverflowFree releases a bank whose loop overflows in more than this
	// fraction of threads (checked after MinThreads), freeing it for
	// deeper loops. 0 disables the policy.
	OverflowFree float64
	// MinThreads is the observation floor before OverflowFree applies.
	MinThreads int64
}

// DefaultOptions returns the runtime policies used by the experiments.
func DefaultOptions() Options {
	return Options{
		Extended:     false,
		ThreadQuota:  0,
		OverflowFree: 0.9,
		MinThreads:   64,
	}
}

// lineEntry is one direct-mapped cache-line timestamp slot (§5.3).
type lineEntry struct {
	tag   uint32
	ts    int64
	valid bool
}

// storeFIFO models the three store buffers that hold heap store
// timestamps during tracing: a FIFO of cache-line-sized entries holding
// per-word store timestamps, 192 lines deep (6 kB of write history).
type storeFIFO struct {
	cap     int
	entries map[uint32]*fifoLine // line number -> entry
	order   []uint32             // allocation order for eviction
	head    int
}

type fifoLine struct {
	ts    [hydra.LineSize / hydra.WordSize]int64
	valid [hydra.LineSize / hydra.WordSize]bool
}

func newStoreFIFO(capLines int) *storeFIFO {
	return &storeFIFO{cap: capLines, entries: map[uint32]*fifoLine{}}
}

func (f *storeFIFO) record(addr uint32, ts int64) {
	line := addr / hydra.LineSize
	word := (addr % hydra.LineSize) / hydra.WordSize
	e := f.entries[line]
	if e == nil {
		if len(f.entries) >= f.cap {
			// Evict the oldest still-present line.
			for {
				victim := f.order[f.head]
				f.head++
				if _, ok := f.entries[victim]; ok {
					delete(f.entries, victim)
					break
				}
			}
		}
		e = &fifoLine{}
		f.entries[line] = e
		f.order = append(f.order, line)
		if f.head > 4096 && f.head*2 > len(f.order) {
			f.order = append([]uint32(nil), f.order[f.head:]...)
			f.head = 0
		}
	}
	e.ts[word] = ts
	e.valid[word] = true
}

func (f *storeFIFO) lookup(addr uint32) (int64, bool) {
	line := addr / hydra.LineSize
	word := (addr % hydra.LineSize) / hydra.WordSize
	e := f.entries[line]
	if e == nil || !e.valid[word] {
		return 0, false
	}
	return e.ts[word], true
}

// bank is one comparator bank (Figure 7) bound to a dynamic loop entry.
type bank struct {
	loopID    int
	frame     uint64
	numLocals int
	allocated bool // false: placeholder for an untraced loop entry

	entryStart int64
	tsCur      int64 // thread start timestamp (t)
	tsPrev     int64 // thread start timestamp (t-1)
	threadIdx  int64 // threads started in this entry (current = threadIdx+1)

	// Per-thread critical-arc state.
	hasArc   [2]bool
	minArc   [2]int64
	minArcPC [2]int

	// Per-thread overflow state.
	ldLines    int
	stLines    int
	overflowed bool

	// Per-entry accumulation, folded into the loop table at eloop.
	acc LoopStats

	// tracked marks the named-local slots this bank's sloop reserved,
	// and localTS holds the bank's own store timestamps for them: each
	// sloop reserves its own local-variable timestamp entries (Table 4),
	// so an inner loop freeing its reservation never disturbs an outer
	// bank's view of the same variable.
	tracked map[int]bool
	localTS map[int]int64
}

// Tracer is the full TEST hardware model: the comparator bank array plus
// the repurposed store buffers, driven by the VM event stream.
type Tracer struct {
	cfg  hydra.Config
	opts Options
	prog *tir.Program

	heapTS *storeFIFO
	ldLine []lineEntry
	stLine []lineEntry

	stack      []*bank
	inUseBanks int
	localUsed  int

	table    map[int]*LoopStats
	disabled map[int]bool // thread quota reached
	freed    map[int]bool // bank released due to persistent overflow

	// parentEdges records observed dynamic nesting: child loop -> parent
	// loop (-1 at top level) -> entry count. The profile analyzer turns
	// this into the dynamic loop tree that Equation 2 selects over.
	parentEdges map[int]map[int]int64
}

// Compile-time check that Tracer is a VM listener.
var (
	_ vmsim.Listener      = (*Tracer)(nil)
	_ vmsim.BatchConsumer = (*Tracer)(nil)
)

// ConsumeEvents implements vmsim.BatchConsumer: the fast engine hands the
// tracer whole event batches — one interface dispatch per batch instead
// of one per event — and the demultiplexing below resolves to direct
// method calls on the concrete Tracer. Events arrive in execution order
// and are processed in order, so the comparator-bank state evolves
// exactly as it would under per-event delivery.
func (t *Tracer) ConsumeEvents(evs []vmsim.Event) {
	for i := range evs {
		ev := &evs[i]
		switch ev.Kind {
		case vmsim.EvHeapLoad:
			t.HeapLoad(ev.Now, ev.Addr, int(ev.PC))
		case vmsim.EvHeapStore:
			t.HeapStore(ev.Now, ev.Addr, int(ev.PC))
		case vmsim.EvLocalLoad:
			t.LocalLoad(ev.Now, vmsim.SlotID{Frame: ev.Frame, Slot: int(ev.Slot)}, int(ev.PC))
		case vmsim.EvLocalStore:
			t.LocalStore(ev.Now, vmsim.SlotID{Frame: ev.Frame, Slot: int(ev.Slot)}, int(ev.PC))
		case vmsim.EvLoopStart:
			t.LoopStart(ev.Now, int(ev.Loop), int(ev.NumLocals), ev.Frame)
		case vmsim.EvLoopIter:
			t.LoopIter(ev.Now, int(ev.Loop))
		case vmsim.EvLoopEnd:
			t.LoopEnd(ev.Now, int(ev.Loop))
		case vmsim.EvReadStats:
			t.ReadStats(ev.Now, int(ev.Loop))
		}
	}
}

// NewTracer builds a tracer for prog with the given machine config.
func NewTracer(prog *tir.Program, cfg hydra.Config, opts Options) *Tracer {
	return &Tracer{
		cfg:         cfg,
		opts:        opts,
		prog:        prog,
		heapTS:      newStoreFIFO(cfg.Tracer.HeapStoreLines),
		ldLine:      make([]lineEntry, cfg.Tracer.LoadLineTS),
		stLine:      make([]lineEntry, cfg.Tracer.StoreLineTS),
		table:       map[int]*LoopStats{},
		disabled:    map[int]bool{},
		freed:       map[int]bool{},
		parentEdges: map[int]map[int]int64{},
	}
}

// ParentEdges returns the observed dynamic nesting edge counts:
// child loop id -> parent loop id (-1 for top level) -> entries.
func (t *Tracer) ParentEdges() map[int]map[int]int64 { return t.parentEdges }

// Results returns the per-loop statistics table collected so far.
func (t *Tracer) Results() map[int]*LoopStats { return t.table }

func (t *Tracer) loopStats(loop int) *LoopStats {
	s := t.table[loop]
	if s == nil {
		s = &LoopStats{Loop: loop}
		if t.opts.Extended {
			s.PCArcs = map[int]*PCArcStats{}
		}
		t.table[loop] = s
	}
	return s
}

// LoopStart handles an sloop annotation: allocate a comparator bank if the
// runtime policies allow, otherwise push an inactive placeholder so the
// stack discipline stays aligned with eloop events.
func (t *Tracer) LoopStart(now int64, loop, numLocals int, frame uint64) {
	parent := -1
	if len(t.stack) > 0 {
		parent = t.stack[len(t.stack)-1].loopID
	}
	pe := t.parentEdges[loop]
	if pe == nil {
		pe = map[int]int64{}
		t.parentEdges[loop] = pe
	}
	pe[parent]++

	b := &bank{loopID: loop, frame: frame, numLocals: numLocals}
	switch {
	case t.disabled[loop] || t.freed[loop]:
		// Annotations for this loop are logically nop'd out.
	case t.inUseBanks >= t.cfg.Tracer.Banks:
		t.loopStats(loop).SkippedEntries++
	case t.localUsed+numLocals > t.cfg.Tracer.LocalSlots:
		t.loopStats(loop).SkippedEntries++
	default:
		b.allocated = true
		b.entryStart = now
		b.tsCur = now
		b.resetThread()
		info := &t.prog.Loops[loop]
		b.tracked = make(map[int]bool, len(info.AnnLocals))
		b.localTS = make(map[int]int64, len(info.AnnLocals))
		for _, s := range info.AnnLocals {
			b.tracked[s] = true
		}
		t.inUseBanks++
		t.localUsed += numLocals
	}
	t.stack = append(t.stack, b)
}

func (b *bank) resetThread() {
	b.hasArc[0], b.hasArc[1] = false, false
	b.ldLines, b.stLines = 0, 0
	b.overflowed = false
}

// endThread folds the current thread's critical arcs and overflow flag
// into the entry accumulator, then starts the next thread at time now.
func (b *bank) endThread(now int64, t *Tracer) {
	for bin := 0; bin < 2; bin++ {
		if b.hasArc[bin] {
			b.acc.ArcCount[bin]++
			b.acc.ArcLenSum[bin] += b.minArc[bin]
			if t.opts.Extended {
				s := t.loopStats(b.loopID)
				pa := s.PCArcs[b.minArcPC[bin]]
				if pa == nil {
					pa = &PCArcStats{MinLen: b.minArc[bin]}
					s.PCArcs[b.minArcPC[bin]] = pa
				}
				pa.Count++
				pa.LenSum += b.minArc[bin]
				if b.minArc[bin] < pa.MinLen {
					pa.MinLen = b.minArc[bin]
				}
			}
		}
	}
	if b.overflowed {
		b.acc.Overflows++
	}
	if b.ldLines > b.acc.MaxLdLines {
		b.acc.MaxLdLines = b.ldLines
	}
	if b.stLines > b.acc.MaxStLines {
		b.acc.MaxStLines = b.stLines
	}
	b.threadIdx++
	b.tsPrev = b.tsCur
	b.tsCur = now
	b.resetThread()
}

// LoopIter handles an eoi annotation: shift the thread start timestamps of
// the matching bank.
func (t *Tracer) LoopIter(now int64, loop int) {
	for i := len(t.stack) - 1; i >= 0; i-- {
		if t.stack[i].loopID == loop {
			if t.stack[i].allocated {
				t.stack[i].endThread(now, t)
			}
			return
		}
	}
}

// LoopEnd handles an eloop annotation: finish the final thread, fold the
// entry's counters into the loop table, free the bank, and apply the
// runtime policies (overflow release, thread quota).
func (t *Tracer) LoopEnd(now int64, loop int) {
	n := len(t.stack) - 1
	if n < 0 {
		return
	}
	b := t.stack[n]
	t.stack = t.stack[:n]
	if b.loopID != loop {
		// Mismatched nesting should be impossible with well-formed
		// annotations; scan down defensively.
		for i := n - 1; i >= 0; i-- {
			if t.stack[i].loopID == loop {
				b = t.stack[i]
				t.stack = append(t.stack[:i], t.stack[i+1:]...)
				break
			}
		}
	}
	if !b.allocated {
		return
	}
	b.endThread(now, t)
	b.acc.Threads = b.threadIdx
	b.acc.Entries = 1
	b.acc.Cycles = now - b.entryStart
	s := t.loopStats(loop)
	s.add(&b.acc)
	t.inUseBanks--
	t.localUsed -= b.numLocals

	if t.opts.OverflowFree > 0 && s.Threads >= t.opts.MinThreads &&
		float64(s.Overflows) > t.opts.OverflowFree*float64(s.Threads) {
		t.freed[loop] = true
	}
	if t.opts.ThreadQuota > 0 && s.Threads >= t.opts.ThreadQuota {
		t.disabled[loop] = true
	}
}

// ReadStats is a timing-only event (the VM charges the software routine's
// cycles); statistics are folded at LoopEnd.
func (t *Tracer) ReadStats(now int64, loop int) {}

// dependency runs the load dependency analysis (§4.2.1) for one load with
// the given last-store timestamp against every active bank.
func (t *Tracer) dependency(now int64, storeTS int64, pc int) {
	for _, b := range t.stack {
		if !b.allocated {
			continue
		}
		if storeTS < b.entryStart || storeTS >= b.tsCur {
			// Stored before this STL entry, or within the current
			// thread: not an inter-thread dependency for this loop.
			continue
		}
		bin := BinEarlier
		if b.threadIdx >= 1 && storeTS >= b.tsPrev {
			bin = BinPrev
		}
		arc := now - storeTS
		if !b.hasArc[bin] || arc < b.minArc[bin] {
			b.hasArc[bin] = true
			b.minArc[bin] = arc
			b.minArcPC[bin] = pc
		}
	}
}

// HeapLoad implements the automatic tracing of lw instructions: the load
// dependency analysis plus the load-line half of the overflow analysis.
func (t *Tracer) HeapLoad(now int64, addr uint32, pc int) {
	if ts, ok := t.heapTS.lookup(addr); ok {
		t.dependency(now, ts, pc)
	}
	// Overflow analysis, load geometry: index bits 13:5, tag bits 31:14.
	idx := (addr / hydra.LineSize) % uint32(len(t.ldLine))
	tag := addr >> 14
	e := &t.ldLine[idx]
	for _, b := range t.stack {
		if !b.allocated {
			continue
		}
		if !(e.valid && e.tag == tag && e.ts >= b.tsCur) {
			b.ldLines++
			if b.ldLines > t.cfg.Buffers.LoadLines {
				b.overflowed = true
			}
		}
	}
	e.valid, e.tag, e.ts = true, tag, now
}

// HeapStore implements the automatic tracing of sw instructions: record
// the store timestamp for later loads plus the store-line half of the
// overflow analysis.
func (t *Tracer) HeapStore(now int64, addr uint32, pc int) {
	t.heapTS.record(addr, now)
	// Overflow analysis, store geometry: index bits 10:5, tag bits 31:11.
	idx := (addr / hydra.LineSize) % uint32(len(t.stLine))
	tag := addr >> 11
	e := &t.stLine[idx]
	for _, b := range t.stack {
		if !b.allocated {
			continue
		}
		if !(e.valid && e.tag == tag && e.ts >= b.tsCur) {
			b.stLines++
			if b.stLines > t.cfg.Buffers.StoreLines {
				b.overflowed = true
			}
		}
	}
	e.valid, e.tag, e.ts = true, tag, now
}

// LocalLoad handles an lwl annotation: local variables take part in the
// dependency analysis (they carry loop-borne scalar dependencies) but not
// in the overflow analysis (they live in registers, not buffers). Each
// bank consults its own reserved timestamp entry for the variable.
func (t *Tracer) LocalLoad(now int64, id vmsim.SlotID, pc int) {
	for _, b := range t.stack {
		if !b.allocated || b.frame != id.Frame || !b.tracked[id.Slot] {
			continue
		}
		ts, ok := b.localTS[id.Slot]
		if !ok || ts < b.entryStart || ts >= b.tsCur {
			continue
		}
		bin := BinEarlier
		if b.threadIdx >= 1 && ts >= b.tsPrev {
			bin = BinPrev
		}
		arc := now - ts
		if !b.hasArc[bin] || arc < b.minArc[bin] {
			b.hasArc[bin] = true
			b.minArc[bin] = arc
			b.minArcPC[bin] = pc
		}
	}
}

// LocalStore handles an swl annotation: every active bank that reserved
// the variable records its own store timestamp.
func (t *Tracer) LocalStore(now int64, id vmsim.SlotID, pc int) {
	for _, b := range t.stack {
		if b.allocated && b.frame == id.Frame && b.tracked[id.Slot] {
			b.localTS[id.Slot] = now
		}
	}
}
