package core_test

import (
	"testing"
	"testing/quick"

	"jrpm/internal/core"
	"jrpm/internal/hydra"
	"jrpm/internal/tir"
	"jrpm/internal/vmsim"
)

// makeProg builds a minimal program whose loop table has n loops, each
// tracking the given local slots.
func makeProg(n int, annLocals ...[]int) *tir.Program {
	p := &tir.Program{}
	for i := 0; i < n; i++ {
		info := tir.LoopInfo{ID: i, Candidate: true}
		if i < len(annLocals) {
			info.AnnLocals = annLocals[i]
			info.NumLocals = len(annLocals[i])
		}
		p.Loops = append(p.Loops, info)
	}
	return p
}

func newTracer(p *tir.Program, mut func(*hydra.Config)) *core.Tracer {
	cfg := hydra.DefaultConfig()
	if mut != nil {
		mut(&cfg)
	}
	return core.NewTracer(p, cfg, core.Options{})
}

// TestDependencyBins drives the Figure 3 analysis by hand: a store in
// thread 1 produces a t-1 arc when loaded in thread 2 and a <t-1 arc when
// loaded again in thread 3.
func TestDependencyBins(t *testing.T) {
	tr := newTracer(makeProg(1), nil)
	tr.LoopStart(0, 0, 0, 1)
	tr.HeapStore(10, 0x1000, 1)
	tr.LoopIter(100, 0) // thread 2 starts
	tr.HeapLoad(150, 0x1000, 2)
	tr.LoopIter(200, 0) // thread 3 starts
	tr.HeapLoad(250, 0x1000, 3)
	tr.LoopEnd(300, 0)

	s := tr.Results()[0]
	if s == nil {
		t.Fatal("no stats for loop 0")
	}
	if s.Threads != 3 || s.Entries != 1 {
		t.Fatalf("threads=%d entries=%d, want 3/1", s.Threads, s.Entries)
	}
	if s.Cycles != 300 {
		t.Fatalf("cycles=%d, want 300", s.Cycles)
	}
	if s.ArcCount[core.BinPrev] != 1 || s.ArcLenSum[core.BinPrev] != 140 {
		t.Fatalf("t-1 bin = (%d, %d), want (1, 140)", s.ArcCount[core.BinPrev], s.ArcLenSum[core.BinPrev])
	}
	if s.ArcCount[core.BinEarlier] != 1 || s.ArcLenSum[core.BinEarlier] != 240 {
		t.Fatalf("<t-1 bin = (%d, %d), want (1, 240)", s.ArcCount[core.BinEarlier], s.ArcLenSum[core.BinEarlier])
	}
}

// TestCriticalArcIsShortest checks that only the shortest arc per thread
// pair is recorded ("we only record the critical arc").
func TestCriticalArcIsShortest(t *testing.T) {
	tr := newTracer(makeProg(1), nil)
	tr.LoopStart(0, 0, 0, 1)
	tr.HeapStore(10, 0x1000, 1) // arc length 140 if loaded at 150
	tr.HeapStore(50, 0x2000, 2) // arc length 110 if loaded at 160
	tr.LoopIter(100, 0)
	tr.HeapLoad(150, 0x1000, 3)
	tr.HeapLoad(160, 0x2000, 4)
	tr.LoopEnd(200, 0)

	s := tr.Results()[0]
	if s.ArcCount[core.BinPrev] != 1 {
		t.Fatalf("arc count = %d, want 1 (one critical arc per thread)", s.ArcCount[core.BinPrev])
	}
	if s.ArcLenSum[core.BinPrev] != 110 {
		t.Fatalf("critical arc length = %d, want the shortest (110)", s.ArcLenSum[core.BinPrev])
	}
}

// TestPreLoopStoresIgnored: stores before the STL entry are not
// inter-thread dependencies.
func TestPreLoopStoresIgnored(t *testing.T) {
	tr := newTracer(makeProg(1), nil)
	tr.HeapStore(5, 0x1000, 1) // before sloop
	tr.LoopStart(10, 0, 0, 1)
	tr.LoopIter(50, 0)
	tr.HeapLoad(60, 0x1000, 2)
	tr.LoopEnd(100, 0)
	s := tr.Results()[0]
	if s.ArcCount[core.BinPrev] != 0 || s.ArcCount[core.BinEarlier] != 0 {
		t.Fatalf("arcs %v recorded for a pre-loop store", s.ArcCount)
	}
}

// TestIntraThreadIgnored: a store and load in the same thread never form
// an arc.
func TestIntraThreadIgnored(t *testing.T) {
	tr := newTracer(makeProg(1), nil)
	tr.LoopStart(0, 0, 0, 1)
	tr.LoopIter(10, 0)
	tr.HeapStore(20, 0x1000, 1)
	tr.HeapLoad(30, 0x1000, 2)
	tr.LoopEnd(100, 0)
	s := tr.Results()[0]
	if s.ArcCount[core.BinPrev] != 0 {
		t.Fatalf("intra-thread store/load counted as an arc")
	}
}

// TestOverflowAnalysis reproduces the Figure 4 mechanism with tiny buffer
// limits: a thread touching more distinct lines than the limit counts one
// overflow.
func TestOverflowAnalysis(t *testing.T) {
	tr := newTracer(makeProg(1), func(c *hydra.Config) {
		c.Buffers.LoadLines = 2
		c.Buffers.StoreLines = 1
	})
	tr.LoopStart(0, 0, 0, 1)
	// Thread 1: three distinct load lines -> exceeds the 2-line limit.
	tr.HeapLoad(10, 0x1000, 1)
	tr.HeapLoad(20, 0x2000, 2)
	tr.HeapLoad(30, 0x3000, 3)
	tr.LoopIter(50, 0)
	// Thread 2: stays within limits.
	tr.HeapLoad(60, 0x1000, 4)
	tr.LoopEnd(100, 0)

	s := tr.Results()[0]
	if s.Overflows != 1 {
		t.Fatalf("overflows = %d, want 1", s.Overflows)
	}
	if s.MaxLdLines != 3 {
		t.Fatalf("max load lines = %d, want 3", s.MaxLdLines)
	}
	if s.Threads != 2 {
		t.Fatalf("threads = %d, want 2", s.Threads)
	}
}

// TestOverflowStoreLimit: the store-line counter uses the store-buffer
// limit.
func TestOverflowStoreLimit(t *testing.T) {
	tr := newTracer(makeProg(1), func(c *hydra.Config) {
		c.Buffers.StoreLines = 2
	})
	tr.LoopStart(0, 0, 0, 1)
	tr.HeapStore(10, 0x1000, 1)
	tr.HeapStore(20, 0x1020, 2) // adjacent line, distinct table index
	tr.HeapStore(30, 0x1004, 3) // same line as 0x1000: not a new line
	tr.LoopEnd(50, 0)
	if s := tr.Results()[0]; s.Overflows != 0 || s.MaxStLines != 2 {
		t.Fatalf("overflows=%d maxStLines=%d, want 0/2", s.Overflows, s.MaxStLines)
	}

	tr2 := newTracer(makeProg(1), func(c *hydra.Config) {
		c.Buffers.StoreLines = 2
	})
	tr2.LoopStart(0, 0, 0, 1)
	tr2.HeapStore(10, 0x1000, 1)
	tr2.HeapStore(20, 0x1020, 2)
	tr2.HeapStore(30, 0x1040, 3)
	tr2.LoopEnd(50, 0)
	if s := tr2.Results()[0]; s.Overflows != 1 {
		t.Fatalf("overflows=%d, want 1", s.Overflows)
	}
}

// TestDirectMappedAliasing documents the imprecision section 5.3 admits:
// the store-line timestamp table is direct mapped (index bits 10:5), so
// lines 0x1000, 0x2000 and 0x3000 all alias to index 0 and a line can be
// re-counted after an intervening aliasing store.
func TestDirectMappedAliasing(t *testing.T) {
	tr := newTracer(makeProg(1), func(c *hydra.Config) {
		c.Buffers.StoreLines = 2
	})
	tr.LoopStart(0, 0, 0, 1)
	tr.HeapStore(10, 0x1000, 1)
	tr.HeapStore(20, 0x2000, 2) // evicts 0x1000's table entry
	tr.HeapStore(30, 0x1004, 3) // same real line as 0x1000, but recounted
	tr.LoopEnd(50, 0)
	if s := tr.Results()[0]; s.MaxStLines != 3 || s.Overflows != 1 {
		t.Fatalf("maxStLines=%d overflows=%d, want 3/1 (aliasing error)", s.MaxStLines, s.Overflows)
	}
}

// TestStoreFIFOEviction: the 192-line write history is finite; once a
// store's line is evicted its timestamp is lost and the dependency is
// missed (a documented imprecision, section 6.2).
func TestStoreFIFOEviction(t *testing.T) {
	tr := newTracer(makeProg(1), func(c *hydra.Config) {
		c.Tracer.HeapStoreLines = 2
	})
	tr.LoopStart(0, 0, 0, 1)
	tr.HeapStore(10, 0x1000, 1)
	tr.HeapStore(20, 0x2000, 2)
	tr.HeapStore(30, 0x3000, 3) // evicts 0x1000's line
	tr.LoopIter(50, 0)
	tr.HeapLoad(60, 0x1000, 4) // timestamp gone: no arc
	tr.HeapLoad(70, 0x3000, 5) // still present: arc
	tr.LoopEnd(100, 0)

	s := tr.Results()[0]
	if s.ArcCount[core.BinPrev] != 1 || s.ArcLenSum[core.BinPrev] != 40 {
		t.Fatalf("bin t-1 = (%d,%d), want (1,40): eviction must drop the old arc",
			s.ArcCount[core.BinPrev], s.ArcLenSum[core.BinPrev])
	}
}

// TestBankExhaustion: with a 2-bank array, the third simultaneously active
// loop runs untraced and its entry is counted as skipped.
func TestBankExhaustion(t *testing.T) {
	tr := newTracer(makeProg(3), func(c *hydra.Config) {
		c.Tracer.Banks = 2
	})
	tr.LoopStart(0, 0, 0, 1)
	tr.LoopStart(10, 1, 0, 1)
	tr.LoopStart(20, 2, 0, 1) // no bank left
	tr.HeapStore(25, 0x1000, 1)
	tr.LoopIter(30, 2)
	tr.HeapLoad(35, 0x1000, 2)
	tr.LoopEnd(40, 2)
	tr.LoopEnd(50, 1)
	tr.LoopEnd(60, 0)

	if s := tr.Results()[2]; s == nil || s.SkippedEntries != 1 || s.Threads != 0 {
		t.Fatalf("loop 2 should be skipped once and untraced, got %+v", s)
	}
	if s := tr.Results()[0]; s == nil || s.Threads != 1 {
		t.Fatalf("outer loop should still be traced, got %+v", s)
	}
	// The inner arc must still be visible to the outer banks? No: the
	// store and load are in the same outer thread, so no arc there.
	if s := tr.Results()[0]; s.ArcCount[core.BinPrev] != 0 {
		t.Fatalf("outer loop recorded an intra-thread arc")
	}
}

// TestLocalTimestampCapacity: sloop fails to allocate when the 64-entry
// local-variable timestamp buffer has no room ("no room left for local
// variable timestamps").
func TestLocalTimestampCapacity(t *testing.T) {
	tr := newTracer(makeProg(2, []int{0, 1, 2}, []int{0, 1}), func(c *hydra.Config) {
		c.Tracer.LocalSlots = 4
	})
	tr.LoopStart(0, 0, 3, 1)  // reserves 3 of 4
	tr.LoopStart(10, 1, 2, 1) // needs 2, only 1 left -> skipped
	tr.LoopEnd(20, 1)
	tr.LoopEnd(30, 0)
	if s := tr.Results()[1]; s == nil || s.SkippedEntries != 1 {
		t.Fatalf("inner loop should be skipped for lack of local timestamps, got %+v", s)
	}
}

// TestLocalDependencyAnalysis: lwl/swl events feed the same two-bin arc
// analysis, scoped to the reserving bank's frame and slots.
func TestLocalDependencyAnalysis(t *testing.T) {
	tr := newTracer(makeProg(1, []int{7}), nil)
	tr.LoopStart(0, 0, 1, 42)
	tr.LocalStore(10, vmsim.SlotID{Frame: 42, Slot: 7}, 1)
	tr.LoopIter(100, 0)
	tr.LocalLoad(130, vmsim.SlotID{Frame: 42, Slot: 7}, 2) // arc, len 120
	tr.LocalLoad(140, vmsim.SlotID{Frame: 99, Slot: 7}, 3) // wrong frame
	tr.LocalLoad(150, vmsim.SlotID{Frame: 42, Slot: 3}, 4) // untracked slot
	tr.LoopEnd(200, 0)

	s := tr.Results()[0]
	if s.ArcCount[core.BinPrev] != 1 || s.ArcLenSum[core.BinPrev] != 120 {
		t.Fatalf("local arc bin = (%d,%d), want (1,120)", s.ArcCount[core.BinPrev], s.ArcLenSum[core.BinPrev])
	}
}

// TestInnerLoopReservationDoesNotClobberOuter: each bank keeps its own
// local timestamps, so an inner loop's eloop (freeing its reservation)
// must not erase the outer bank's view of a shared variable.
func TestInnerLoopReservationDoesNotClobberOuter(t *testing.T) {
	tr := newTracer(makeProg(2, []int{5}, []int{5}), nil)
	tr.LoopStart(0, 0, 1, 1) // outer tracks slot 5
	tr.LoopStart(10, 1, 1, 1)
	tr.LocalStore(20, vmsim.SlotID{Frame: 1, Slot: 5}, 1)
	tr.LoopEnd(30, 1) // inner frees its reservation
	tr.LoopIter(50, 0)
	tr.LocalLoad(80, vmsim.SlotID{Frame: 1, Slot: 5}, 2)
	tr.LoopEnd(100, 0)

	s := tr.Results()[0]
	if s.ArcCount[core.BinPrev] != 1 || s.ArcLenSum[core.BinPrev] != 60 {
		t.Fatalf("outer bank lost the local timestamp: bin = (%d,%d), want (1,60)",
			s.ArcCount[core.BinPrev], s.ArcLenSum[core.BinPrev])
	}
}

// TestOverflowFreePolicy: a persistently overflowing loop releases its
// bank for deeper loops (§5.2).
func TestOverflowFreePolicy(t *testing.T) {
	cfg := hydra.DefaultConfig()
	cfg.Buffers.LoadLines = 1
	tr := core.NewTracer(makeProg(1), cfg, core.Options{OverflowFree: 0.5, MinThreads: 1})
	// Entry 1: every thread overflows.
	tr.LoopStart(0, 0, 0, 1)
	tr.HeapLoad(10, 0x1000, 1)
	tr.HeapLoad(20, 0x2000, 2)
	tr.LoopEnd(30, 0)
	// Entry 2: the loop is now freed; no stats accumulate.
	tr.LoopStart(40, 0, 0, 1)
	tr.LoopEnd(50, 0)
	s := tr.Results()[0]
	if s.Entries != 1 {
		t.Fatalf("entries = %d: overflow-freed loop kept its bank", s.Entries)
	}
}

// TestThreadQuota: after enough threads, tracing for a loop is disabled
// (the runtime "nops out" its annotations).
func TestThreadQuota(t *testing.T) {
	tr := core.NewTracer(makeProg(1), hydra.DefaultConfig(), core.Options{ThreadQuota: 2})
	tr.LoopStart(0, 0, 0, 1)
	tr.LoopIter(10, 0)
	tr.LoopIter(20, 0)
	tr.LoopEnd(30, 0) // 3 threads >= quota 2 -> disabled
	tr.LoopStart(40, 0, 0, 1)
	tr.LoopIter(50, 0)
	tr.LoopEnd(60, 0)
	if s := tr.Results()[0]; s.Entries != 1 || s.Threads != 3 {
		t.Fatalf("quota did not disable tracing: entries=%d threads=%d", s.Entries, s.Threads)
	}
}

// TestExtendedPCBins: the extended tracer bins critical arcs by load PC.
func TestExtendedPCBins(t *testing.T) {
	tr := core.NewTracer(makeProg(1), hydra.DefaultConfig(), core.Options{Extended: true})
	tr.LoopStart(0, 0, 0, 1)
	tr.HeapStore(10, 0x1000, 1)
	tr.LoopIter(100, 0)
	tr.HeapLoad(150, 0x1000, 77)
	tr.LoopIter(200, 0)
	tr.HeapStore(210, 0x1000, 1)
	tr.LoopIter(300, 0)
	tr.HeapLoad(320, 0x1000, 77)
	tr.LoopEnd(400, 0)

	s := tr.Results()[0]
	pa := s.PCArcs[77]
	if pa == nil || pa.Count != 2 {
		t.Fatalf("PC 77 bin = %+v, want count 2", pa)
	}
	if pa.MinLen != 110 || pa.LenSum != 140+110 {
		t.Fatalf("PC 77 lengths: min=%d sum=%d, want 110/250", pa.MinLen, pa.LenSum)
	}
}

// TestParentEdges: dynamic nesting is recorded for the loop-tree builder.
func TestParentEdges(t *testing.T) {
	tr := newTracer(makeProg(2), nil)
	tr.LoopStart(0, 0, 0, 1)
	tr.LoopStart(10, 1, 0, 1)
	tr.LoopEnd(20, 1)
	tr.LoopStart(30, 1, 0, 1)
	tr.LoopEnd(40, 1)
	tr.LoopEnd(50, 0)
	pe := tr.ParentEdges()
	if pe[0][-1] != 1 {
		t.Fatalf("loop 0 top-level edges = %v", pe[0])
	}
	if pe[1][0] != 2 {
		t.Fatalf("loop 1 -> parent 0 edges = %v, want 2", pe[1])
	}
}

// refThread is the oracle's per-thread state for the property test.
type refThread struct {
	minArc [2]int64
	has    [2]bool
}

// TestDependencyAnalysisMatchesOracle is a property test: for random
// single-loop traces the comparator bank must agree with a brute-force
// oracle that remembers every store timestamp exactly (buffer capacities
// are configured large enough not to interfere).
func TestDependencyAnalysisMatchesOracle(t *testing.T) {
	type op struct {
		Kind uint8 // 0 load, 1 store, 2 eoi
		Addr uint16
	}
	f := func(ops []op) bool {
		tr := newTracer(makeProg(1), func(c *hydra.Config) {
			c.Tracer.HeapStoreLines = 1 << 20
		})
		now := int64(0)
		tr.LoopStart(now, 0, 0, 1)

		storeTS := map[uint32]int64{}
		threadStart := []int64{0} // start time per thread
		cur := refThread{}
		var wantCount, wantSum [2]int64
		fold := func() {
			for b := 0; b < 2; b++ {
				if cur.has[b] {
					wantCount[b]++
					wantSum[b] += cur.minArc[b]
				}
			}
			cur = refThread{}
		}
		for _, o := range ops {
			now += 1 + int64(o.Addr%7)
			addr := uint32(o.Addr) * 4
			switch o.Kind % 3 {
			case 0:
				tr.HeapLoad(now, addr, 1)
				if ts, ok := storeTS[addr]; ok && ts < threadStart[len(threadStart)-1] {
					bin := core.BinEarlier
					if len(threadStart) >= 2 && ts >= threadStart[len(threadStart)-2] {
						bin = core.BinPrev
					}
					arc := now - ts
					if !cur.has[bin] || arc < cur.minArc[bin] {
						cur.has[bin] = true
						cur.minArc[bin] = arc
					}
				}
			case 1:
				tr.HeapStore(now, addr, 1)
				storeTS[addr] = now
			case 2:
				tr.LoopIter(now, 0)
				fold()
				threadStart = append(threadStart, now)
			}
		}
		now++
		tr.LoopEnd(now, 0)
		fold()

		s := tr.Results()[0]
		return s.ArcCount[0] == wantCount[0] && s.ArcCount[1] == wantCount[1] &&
			s.ArcLenSum[0] == wantSum[0] && s.ArcLenSum[1] == wantSum[1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestOverflowCountMatchesOracle: with an alias-free line-timestamp table
// the per-thread new-line counters equal the exact distinct-line counts.
func TestOverflowCountMatchesOracle(t *testing.T) {
	type op struct {
		Kind uint8 // 0 load, 1 store, 2 eoi
		Line uint8
	}
	f := func(ops []op) bool {
		tr := newTracer(makeProg(1), func(c *hydra.Config) {
			c.Buffers.LoadLines = 3
			c.Buffers.StoreLines = 2
		})
		now := int64(0)
		tr.LoopStart(now, 0, 0, 1)
		ldLines := map[uint32]bool{}
		stLines := map[uint32]bool{}
		over := false
		var wantOverflows int64
		wantThreads := int64(0)
		fold := func() {
			if over {
				wantOverflows++
			}
			ldLines, stLines, over = map[uint32]bool{}, map[uint32]bool{}, false
			wantThreads++
		}
		for _, o := range ops {
			now += 3
			// Addresses spread across lines; only 64 distinct lines, far
			// fewer than the 512-entry direct-mapped table, so no
			// aliasing.
			addr := uint32(o.Line%64) * 32
			switch o.Kind % 3 {
			case 0:
				tr.HeapLoad(now, addr, 1)
				ldLines[addr/32] = true
				if len(ldLines) > 3 {
					over = true
				}
			case 1:
				tr.HeapStore(now, addr, 1)
				stLines[addr/32] = true
				if len(stLines) > 2 {
					over = true
				}
			case 2:
				tr.LoopIter(now, 0)
				fold()
			}
		}
		now += 3
		tr.LoopEnd(now, 0)
		fold()
		s := tr.Results()[0]
		return s.Overflows == wantOverflows && s.Threads == wantThreads
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestThreadAccountingMatchesPaper: threads per entry = eoi count + 1, as
// in the Figure 3 walkthrough (3 iterations, 2 back edges, eloop folds
// the final thread).
func TestThreadAccountingMatchesPaper(t *testing.T) {
	tr := newTracer(makeProg(1), nil)
	tr.LoopStart(0, 0, 0, 1)
	tr.LoopIter(11, 0)
	tr.LoopIter(21, 0)
	tr.LoopEnd(35, 0)
	s := tr.Results()[0]
	if s.Threads != 3 || s.Entries != 1 || s.Cycles != 35 {
		t.Fatalf("threads/entries/cycles = %d/%d/%d, want 3/1/35", s.Threads, s.Entries, s.Cycles)
	}
}

// TestEventsOutsideLoopsIgnored: heap traffic with no active bank leaves
// no statistics behind.
func TestEventsOutsideLoopsIgnored(t *testing.T) {
	tr := newTracer(makeProg(1), nil)
	tr.HeapStore(1, 0x1000, 1)
	tr.HeapLoad(2, 0x1000, 2)
	if len(tr.Results()) != 0 {
		t.Fatalf("stats appeared without any loop: %v", tr.Results())
	}
	// But a later loop can still see the pre-recorded store timestamp as
	// intra/pre-loop (no arc).
	tr.LoopStart(10, 0, 0, 1)
	tr.LoopIter(20, 0)
	tr.HeapLoad(25, 0x1000, 3)
	tr.LoopEnd(30, 0)
	if s := tr.Results()[0]; s.ArcCount[core.BinPrev] != 0 || s.ArcCount[core.BinEarlier] != 0 {
		t.Fatalf("pre-loop store produced arcs: %v", s.ArcCount)
	}
}

// TestOuterBankSeesThroughUntracedInner: when an inner loop cannot get a
// bank, the outer loop's analysis continues unaffected (events are
// broadcast, not owned by the innermost loop).
func TestOuterBankSeesThroughUntracedInner(t *testing.T) {
	tr := newTracer(makeProg(2), func(c *hydra.Config) {
		c.Tracer.Banks = 1
	})
	tr.LoopStart(0, 0, 0, 1)
	tr.LoopStart(5, 1, 0, 1) // no bank: placeholder
	tr.HeapStore(10, 0x1000, 1)
	tr.LoopEnd(15, 1)
	tr.LoopIter(20, 0)
	tr.LoopStart(25, 1, 0, 1)
	tr.HeapLoad(30, 0x1000, 2) // arc across outer threads
	tr.LoopEnd(35, 1)
	tr.LoopEnd(40, 0)
	s := tr.Results()[0]
	if s.ArcCount[core.BinPrev] != 1 || s.ArcLenSum[core.BinPrev] != 20 {
		t.Fatalf("outer arc bin = (%d,%d), want (1,20)", s.ArcCount[core.BinPrev], s.ArcLenSum[core.BinPrev])
	}
}

// TestRecursiveLoopActivations: the same static loop active twice (via
// recursion) keeps two independent banks.
func TestRecursiveLoopActivations(t *testing.T) {
	tr := newTracer(makeProg(1, []int{0}), nil)
	tr.LoopStart(0, 0, 1, 1) // outer activation, frame 1
	tr.LocalStore(5, vmsim.SlotID{Frame: 1, Slot: 0}, 1)
	tr.LoopStart(10, 0, 1, 2) // recursive activation, frame 2
	tr.LoopIter(20, 0)
	tr.LocalLoad(25, vmsim.SlotID{Frame: 2, Slot: 0}, 2) // no store in frame 2: no arc
	tr.LoopEnd(30, 0)
	tr.LoopIter(40, 0)
	tr.LocalLoad(45, vmsim.SlotID{Frame: 1, Slot: 0}, 3) // arc in the outer activation
	tr.LoopEnd(50, 0)
	s := tr.Results()[0]
	// Two activations: entries 2; arcs: exactly one (frame 1's).
	if s.Entries != 2 {
		t.Fatalf("entries = %d, want 2", s.Entries)
	}
	if s.ArcCount[core.BinPrev] != 1 || s.ArcLenSum[core.BinPrev] != 40 {
		t.Fatalf("arc bin = (%d,%d), want (1,40)", s.ArcCount[core.BinPrev], s.ArcLenSum[core.BinPrev])
	}
}

// TestOverflowOncePerThread: a thread far over the limit still counts a
// single overflow.
func TestOverflowOncePerThread(t *testing.T) {
	tr := newTracer(makeProg(1), func(c *hydra.Config) {
		c.Buffers.LoadLines = 1
	})
	tr.LoopStart(0, 0, 0, 1)
	for i := 0; i < 10; i++ {
		tr.HeapLoad(int64(10+i), uint32(0x1000+i*32), i)
	}
	tr.LoopEnd(100, 0)
	if s := tr.Results()[0]; s.Overflows != 1 {
		t.Fatalf("overflows = %d, want 1 (counted once per thread)", s.Overflows)
	}
}
