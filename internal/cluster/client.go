package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"jrpm/internal/telemetry"
)

// errTraceMissing marks a shard rejection because the worker no longer
// holds the recording (LRU eviction between push and dispatch); the
// dispatcher re-pushes and retries once within the same attempt.
var errTraceMissing = errors.New("cluster: worker does not hold the trace")

// maxResidency bounds the per-worker trace-residency memo. Against a
// churning fleet the coordinator outlives many worker generations; the
// memo is only a stat-probe saver, so an LRU bound keeps it from
// growing without limit while a false eviction costs one extra stat.
const maxResidency = 4096

// workerClient is the coordinator's HTTP face of one worker.
type workerClient struct {
	name string // as configured (display + metrics key)
	base string // http://host:port
	hc   *http.Client

	mu       sync.Mutex
	hasTrace map[string]bool // content addresses known to be worker-resident
	order    []string        // LRU order, oldest first
}

func newWorkerClient(addr string, timeout time.Duration) *workerClient {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	return &workerClient{
		name:     addr,
		base:     base,
		hc:       &http.Client{Timeout: timeout},
		hasTrace: map[string]bool{},
	}
}

// markResident records key in the bounded residency memo.
func (wc *workerClient) markResident(key string) {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	if wc.hasTrace[key] {
		return
	}
	wc.hasTrace[key] = true
	wc.order = append(wc.order, key)
	for len(wc.order) > maxResidency {
		delete(wc.hasTrace, wc.order[0])
		wc.order = wc.order[1:]
	}
}

// resident reports whether key is memoized as worker-resident.
func (wc *workerClient) resident(key string) bool {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	return wc.hasTrace[key]
}

// apiError decodes a worker's JSON error body.
type apiError struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

func decodeError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var ae apiError
	if json.Unmarshal(body, &ae) == nil && ae.Error != "" {
		if ae.Code == "trace_missing" {
			return errTraceMissing
		}
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, ae.Error)
	}
	return fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
}

// version fetches GET /v1/version.
func (wc *workerClient) version(ctx context.Context) (VersionInfo, error) {
	var vi VersionInfo
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, wc.base+"/v1/version", nil)
	if err != nil {
		return vi, err
	}
	resp, err := wc.hc.Do(req)
	if err != nil {
		return vi, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return vi, decodeError(resp)
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&vi); err != nil {
		return vi, fmt.Errorf("bad version body: %w", err)
	}
	return vi, nil
}

// ready probes GET /v1/readyz. Workers predating the endpoint answer
// 404 and are treated as ready (the version preflight already vetted
// them); 503 means the worker is draining and must not receive shards.
func (wc *workerClient) ready(ctx context.Context) (bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, wc.base+"/v1/readyz", nil)
	if err != nil {
		return false, err
	}
	resp, err := wc.hc.Do(req)
	if err != nil {
		return false, err
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK, http.StatusNotFound:
		return true, nil
	case http.StatusServiceUnavailable:
		return false, nil
	default:
		return false, fmt.Errorf("readyz: HTTP %d", resp.StatusCode)
	}
}

// forget drops the resident marker for a trace (after a trace_missing
// rejection). The stale LRU slot ages out on its own.
func (wc *workerClient) forget(key string) {
	wc.mu.Lock()
	delete(wc.hasTrace, key)
	wc.mu.Unlock()
}

// forgetAll empties the residency memo — called when the worker leaves
// the fleet, so a later reincarnation at the same address starts from
// honest stat probes.
func (wc *workerClient) forgetAll() {
	wc.mu.Lock()
	wc.hasTrace = map[string]bool{}
	wc.order = nil
	wc.mu.Unlock()
}

// ensureTrace makes the recording resident on the worker, shipping bytes
// only when the worker's content-addressed cache misses. It reports
// whether a push happened.
func (wc *workerClient) ensureTrace(ctx context.Context, key string, data []byte) (bool, error) {
	if wc.resident(key) {
		return false, nil
	}

	req, err := http.NewRequestWithContext(ctx, http.MethodGet, wc.base+"/v1/traces/"+key+"?stat=1", nil)
	if err != nil {
		return false, err
	}
	resp, err := wc.hc.Do(req)
	if err != nil {
		return false, err
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNoContent, http.StatusOK:
		wc.markResident(key)
		return false, nil
	case http.StatusNotFound:
		// fall through to push
	default:
		return false, fmt.Errorf("trace stat: HTTP %d", resp.StatusCode)
	}

	// The span covers the actual byte transfer only — the stat probe
	// above is a cache hit, not a push.
	ctx, sp := telemetry.StartSpan(ctx, "trace.push")
	sp.SetAttr("worker", wc.name)
	sp.SetAttr("trace.key", key)
	sp.SetInt("trace.bytes", int64(len(data)))
	defer sp.End()
	put, err := http.NewRequestWithContext(ctx, http.MethodPut, wc.base+"/v1/traces/"+key, bytes.NewReader(data))
	if err != nil {
		sp.Fail(err)
		return false, err
	}
	put.Header.Set("Content-Type", "application/octet-stream")
	put.ContentLength = int64(len(data))
	telemetry.Inject(ctx, put.Header)
	resp, err = wc.hc.Do(put)
	if err != nil {
		sp.Fail(err)
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		err = fmt.Errorf("trace push: %w", decodeError(resp))
		sp.Fail(err)
		return false, err
	}
	wc.markResident(key)
	return true, nil
}

// pull instructs the worker to fetch the recording from a replica
// holder (POST /v1/traces/{hash}/pull): the replication data path that
// moves bytes worker-to-worker instead of through the coordinator.
func (wc *workerClient) pull(ctx context.Context, key string, sources []string) error {
	body, err := json.Marshal(struct {
		Sources []string `json:"sources"`
	}{Sources: sources})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		wc.base+"/v1/traces/"+key+"/pull", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	telemetry.Inject(ctx, req.Header)
	resp, err := wc.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("trace pull: %w", decodeError(resp))
	}
	wc.markResident(key)
	return nil
}

// runShard executes POST /v1/shards.
func (wc *workerClient) runShard(ctx context.Context, sr ShardRequest) ([]OutcomeRow, error) {
	body, err := json.Marshal(sr)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, wc.base+"/v1/shards", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	telemetry.Inject(ctx, req.Header)
	resp, err := wc.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var out ShardResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("bad shard response: %w", err)
	}
	if len(out.Outcomes) != len(sr.Configs) {
		return nil, fmt.Errorf("shard returned %d outcomes for %d configs", len(out.Outcomes), len(sr.Configs))
	}
	return out.Outcomes, nil
}
