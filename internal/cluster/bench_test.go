package cluster

import (
	"context"
	"testing"

	"jrpm"
	"jrpm/internal/hydra"
)

// benchConfigs builds n distinct configurations spanning banks, history
// depth, and load-timestamp capacity.
func benchConfigs(n int) []hydra.Config {
	banks := []int{1, 2, 4, 8}
	hists := []int{8, 48, 192, 4096}
	loads := []int{256, 512}
	cfgs := make([]hydra.Config, 0, n)
	for len(cfgs) < n {
		i := len(cfgs)
		cfg := hydra.DefaultConfig()
		cfg.Tracer.Banks = banks[i%len(banks)]
		cfg.Tracer.HeapStoreLines = hists[(i/len(banks))%len(hists)]
		cfg.Tracer.LoadLineTS = loads[(i/(len(banks)*len(hists)))%len(loads)]
		cfgs = append(cfgs, cfg)
	}
	return cfgs
}

// BenchmarkClusterSweep measures one 32-configuration sweep through
// fleets of 1, 2, and 4 in-process workers. On multi-core hosts the
// per-op time should fall near-linearly with fleet size; in every case
// the content-addressed shipping invariant — each worker receives the
// recording at most once, across all iterations — is asserted at the end.
func BenchmarkClusterSweep(b *testing.B) {
	src, data := recordWorkload(b, "Huffman")
	cfgs := benchConfigs(32)
	grid := Grid{
		Traces:  []GridTrace{{Name: "Huffman", Source: src, Data: data}},
		Configs: cfgs,
		Opts:    jrpm.DefaultOptions(),
	}
	for _, n := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "workers=1", 2: "workers=2", 4: "workers=4"}[n], func(b *testing.B) {
			addrs := make([]string, n)
			workers := make([]*Worker, n)
			for i := range addrs {
				srv, w := newTestWorker(b, nil)
				addrs[i], workers[i] = srv.URL, w
			}
			coord := New(Options{
				Workers:      addrs,
				ShardConfigs: 4,
				Sentinels:    -1, // measure raw sharding, not the verification tax
				HedgeAfter:   -1,
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := coord.Sweep(context.Background(), grid)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Outcomes[0]) != len(cfgs) {
					b.Fatalf("merged %d rows, want %d", len(res.Outcomes[0]), len(cfgs))
				}
			}
			b.StopTimer()
			for i, w := range workers {
				for _, tt := range w.Snapshot().Traces {
					if tt.Pushes > 1 {
						b.Errorf("worker %d: trace %s pushed %d times across %d sweeps, want at most once",
							i, tt.Key[:12], tt.Pushes, b.N)
					}
				}
			}
		})
	}
}
