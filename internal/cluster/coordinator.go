package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"jrpm"
	"jrpm/internal/fleet"
	"jrpm/internal/hydra"
	"jrpm/internal/service"
	"jrpm/internal/telemetry"
	"jrpm/internal/trace"
)

// Options tunes the coordinator. The zero value of every field is
// replaced by a sane default; fields documented as "< 0 disables" use
// the negative range as the explicit off switch.
type Options struct {
	// Workers lists jrpmd worker addresses (host:port or full URLs).
	// Empty means every sweep runs locally. Ignored when Membership is
	// set.
	Workers []string
	// Membership supplies the worker set dynamically (a fleet
	// registry). When set it replaces Workers and the scheduler
	// re-snapshots it for the whole duration of a sweep: workers that
	// join mid-sweep are admitted and pick up shards, workers that
	// disappear are retired and their shards stolen back.
	Membership fleet.Membership
	// MembershipInterval is the fleet re-snapshot (and replica
	// reconcile) period; <= 0 means 250ms.
	MembershipInterval time.Duration
	// Replicas is the desired number of fleet members holding each
	// recording, placed by rendezvous hashing and transferred
	// worker-to-worker; <= 1 keeps the single execution copy.
	Replicas int
	// ShardConfigs is the number of grid configs per shard; <= 0 means 4.
	ShardConfigs int
	// MaxAttempts bounds dispatch attempts per shard before giving up on
	// the cluster (local fallback, unless disabled); <= 0 means 4.
	MaxAttempts int
	// RetryBase/RetryMax shape the exponential backoff between attempts
	// (base*2^n with ±50% jitter, capped); defaults 50ms / 2s.
	RetryBase time.Duration
	RetryMax  time.Duration
	// BreakerThreshold consecutive failures open a worker's circuit
	// breaker for BreakerCooldown; defaults 3 / 2s.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// HedgeAfter re-dispatches a still-running shard to a second worker
	// after this long; <= 0 means 500ms, < 0 disables hedging.
	HedgeAfter time.Duration
	// HedgeInterval is the straggler scan period; <= 0 means 25ms.
	HedgeInterval time.Duration
	// Sentinels is the number of leading shards re-executed on a second
	// worker for the determinism check; 0 means 1, < 0 disables.
	Sentinels int
	// ShardTimeout bounds one shard round trip; <= 0 means 60s.
	ShardTimeout time.Duration
	// PingTimeout bounds the version preflight; <= 0 means 2s.
	PingTimeout time.Duration
	// DisableLocalFallback turns exhausted-shard and no-worker local
	// execution into hard errors.
	DisableLocalFallback bool
	// DisableStealing pins every shard to its affinity worker (plus
	// retries and hedges); idle workers wait instead of stealing.
	DisableStealing bool
	// Seed fixes the jitter RNG (tests); 0 means 1.
	Seed int64
	// Logger receives scheduling events (worker exclusions, shard
	// failures, breaker trips, fallbacks); nil is silent. All methods of
	// a nil *telemetry.Logger are no-ops, so call sites don't guard.
	Logger *telemetry.Logger
}

func (o Options) withDefaults() Options {
	if o.MembershipInterval <= 0 {
		o.MembershipInterval = 250 * time.Millisecond
	}
	if o.Replicas <= 0 {
		o.Replicas = 1
	}
	if o.ShardConfigs <= 0 {
		o.ShardConfigs = 4
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 4
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 50 * time.Millisecond
	}
	if o.RetryMax <= 0 {
		o.RetryMax = 2 * time.Second
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 2 * time.Second
	}
	if o.HedgeAfter == 0 {
		o.HedgeAfter = 500 * time.Millisecond
	}
	if o.HedgeInterval <= 0 {
		o.HedgeInterval = 25 * time.Millisecond
	}
	if o.Sentinels == 0 {
		o.Sentinels = 1
	}
	if o.ShardTimeout <= 0 {
		o.ShardTimeout = 60 * time.Second
	}
	if o.PingTimeout <= 0 {
		o.PingTimeout = 2 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Coordinator drives distributed sweeps. It is stateless between Sweep
// calls except for the per-worker trace-residency bookkeeping (bounded,
// and dropped when a worker leaves the fleet), so one coordinator can
// run many grids against the same fleet and ship each recording to each
// worker at most once.
type Coordinator struct {
	opts       Options
	membership fleet.Membership
	dynamic    bool

	clientMu sync.Mutex
	clients  map[string]*workerClient // by member ID, persistent across sweeps

	rngMu sync.Mutex
	rng   *rand.Rand
}

// New builds a coordinator for a worker fleet: dynamic when
// opts.Membership is set, otherwise the static opts.Workers list.
func New(opts Options) *Coordinator {
	opts = opts.withDefaults()
	c := &Coordinator{
		opts:    opts,
		clients: map[string]*workerClient{},
		rng:     rand.New(rand.NewSource(opts.Seed)),
	}
	if opts.Membership != nil {
		c.membership = opts.Membership
		c.dynamic = true
	} else {
		c.membership = fleet.Static(opts.Workers)
	}
	return c
}

// client resolves (and caches) the HTTP client for a fleet member. A
// member that re-registers under the same ID with a new address gets a
// fresh client, dropping the stale residency memo with it.
func (c *Coordinator) client(m fleet.Member) *workerClient {
	base := m.Addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	c.clientMu.Lock()
	defer c.clientMu.Unlock()
	wc := c.clients[m.ID]
	if wc == nil || wc.base != base {
		wc = newWorkerClient(m.Addr, 0)
		wc.name = m.ID
		c.clients[m.ID] = wc
	}
	return wc
}

// dropClient forgets a member's client state entirely (fleet
// departure): the residency memo for a dead worker is useless, and
// keeping it across churning worker generations would grow without
// bound.
func (c *Coordinator) dropClient(id string) {
	c.clientMu.Lock()
	delete(c.clients, id)
	c.clientMu.Unlock()
}

func (c *Coordinator) jitter(d time.Duration) time.Duration {
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	return d/2 + time.Duration(c.rng.Int63n(int64(d)))
}

func (c *Coordinator) backoff(attempt int) time.Duration {
	d := c.opts.RetryBase
	for i := 1; i < attempt && d < c.opts.RetryMax; i++ {
		d *= 2
	}
	if d > c.opts.RetryMax {
		d = c.opts.RetryMax
	}
	return c.jitter(d)
}

// preflight version- and readiness-checks every member. Unreachable or
// draining workers are excluded (they may come back; the breaker would
// exclude them anyway); reachable workers with a different trace-format
// version are refusals — mixing formats corrupts results, so they are
// reported as hard errors.
func (c *Coordinator) preflight(ctx context.Context, members []fleet.Member) (healthy []fleet.Member, refusals []error) {
	pctx, cancel := context.WithTimeout(ctx, c.opts.PingTimeout)
	defer cancel()
	vis := make([]VersionInfo, len(members))
	errs := make([]error, len(members))
	ready := make([]bool, len(members))
	readyErrs := make([]error, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		wg.Add(1)
		go func(i int, wc *workerClient) {
			defer wg.Done()
			vis[i], errs[i] = wc.version(pctx)
			if errs[i] == nil {
				ready[i], readyErrs[i] = wc.ready(pctx)
			}
		}(i, c.client(m))
	}
	wg.Wait()
	// Iterate in membership order so worker indices (and therefore trace
	// affinity and shard placement) are deterministic.
	for i, m := range members {
		switch {
		case errs[i] != nil:
			c.opts.Logger.WarnCtx(ctx, "cluster: worker unreachable, excluded",
				"worker", m.ID, "err", errs[i])
		case vis[i].TraceFormat != trace.Version:
			refusals = append(refusals, fmt.Errorf(
				"worker %s: trace format v%d, coordinator speaks v%d (module %q) — refusing mixed-format worker",
				m.ID, vis[i].TraceFormat, trace.Version, vis[i].Module))
		case readyErrs[i] != nil:
			c.opts.Logger.WarnCtx(ctx, "cluster: worker readiness probe failed, excluded",
				"worker", m.ID, "err", readyErrs[i])
		case !ready[i]:
			c.opts.Logger.WarnCtx(ctx, "cluster: worker draining, excluded",
				"worker", m.ID)
		default:
			healthy = append(healthy, m)
		}
	}
	return healthy, refusals
}

// Sweep runs the grid: shard, dispatch, retry, hedge, steal, verify,
// merge. The returned outcomes are byte-identical (under Canonical) to
// EncodeOutcomes of a local trace.Sweep of every (trace, config) cell.
//
// When ctx carries a telemetry tracer (telemetry.WithTracer), the whole
// sweep is recorded as one distributed trace: a cluster.sweep root span
// with shard.dispatch / trace.push / shard.local children, propagated
// to workers over traceparent headers so their server-side spans join
// the same trace.
func (c *Coordinator) Sweep(ctx context.Context, grid Grid) (*Result, error) {
	return c.SweepStream(ctx, grid, nil)
}

// SweepStream is Sweep with a live row feed: onRow is invoked exactly
// once per (trace, config) cell, as the shard owning the cell
// completes, with the same row that later lands in Result.Outcomes.
// Rows arrive in completion order, not grid order. Callbacks are
// serialized (never concurrent) but must not block for long — they run
// on the scheduling path. A nil onRow is Sweep.
func (c *Coordinator) SweepStream(ctx context.Context, grid Grid, onRow func(trace, config int, row OutcomeRow)) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, sp := telemetry.StartSpan(ctx, "cluster.sweep")
	sp.SetInt("sweep.traces", int64(len(grid.Traces)))
	sp.SetInt("sweep.configs", int64(len(grid.Configs)))
	res, err := c.sweep(ctx, grid, onRow)
	sp.Fail(err)
	sp.End()
	return res, err
}

func (c *Coordinator) sweep(ctx context.Context, grid Grid, onRow func(int, int, OutcomeRow)) (*Result, error) {
	if len(grid.Traces) == 0 {
		return nil, errors.New("cluster: grid has no traces")
	}
	if len(grid.Configs) == 0 {
		return nil, errors.New("cluster: grid has no configs")
	}
	for i, gt := range grid.Traces {
		if len(gt.Data) == 0 {
			return nil, fmt.Errorf("cluster: trace %d (%s) has no recording bytes", i, gt.Name)
		}
	}
	grid.Opts = jrpm.Normalize(grid.Opts)
	keys := make([]string, len(grid.Traces))
	for i := range grid.Traces {
		keys[i] = service.TraceKeyOf(grid.Traces[i].Data)
	}

	metrics := newMetrics()
	members, merr := c.membership.Members(ctx)
	if merr != nil {
		if c.opts.DisableLocalFallback {
			return nil, fmt.Errorf("%w: membership: %v", ErrNoWorkers, merr)
		}
		c.opts.Logger.WarnCtx(ctx, "cluster: membership unavailable, running grid locally", "err", merr)
		return c.localGrid(ctx, &grid, metrics, true, onRow)
	}
	if len(members) == 0 {
		if !c.dynamic {
			// No workers configured: plain local execution, not a
			// degradation.
			return c.localGrid(ctx, &grid, metrics, false, onRow)
		}
		if c.opts.DisableLocalFallback {
			return nil, fmt.Errorf("%w: fleet registry reports no live members", ErrNoWorkers)
		}
		return c.localGrid(ctx, &grid, metrics, true, onRow)
	}
	healthy, refusals := c.preflight(ctx, members)
	if len(healthy) == 0 {
		if len(refusals) > 0 {
			return nil, errors.Join(refusals...)
		}
		if c.opts.DisableLocalFallback {
			return nil, fmt.Errorf("%w: all %d workers unreachable", ErrNoWorkers, len(members))
		}
		return c.localGrid(ctx, &grid, metrics, true, onRow)
	}
	if len(refusals) > 0 {
		// Some workers are usable but others speak a different trace
		// format: refuse loudly rather than silently shrinking the fleet.
		return nil, errors.Join(refusals...)
	}
	telemetry.SpanFrom(ctx).SetInt("sweep.workers", int64(len(healthy)))

	s := newSched(c, &grid, keys, healthy, metrics, onRow)
	if err := s.run(ctx); err != nil {
		return nil, err
	}
	_, msp := telemetry.StartSpan(ctx, "sweep.merge")
	out, err := s.merge()
	msp.Fail(err)
	msp.End()
	if err != nil {
		return nil, err
	}
	snap := metrics.Snapshot()
	snap.TraceReplicas = s.replicaCounts()
	return &Result{Outcomes: out, Metrics: snap}, nil
}

// localGrid executes the whole grid in-process (no workers configured,
// or none reachable).
func (c *Coordinator) localGrid(ctx context.Context, grid *Grid, metrics *Metrics, degraded bool, onRow func(int, int, OutcomeRow)) (*Result, error) {
	if degraded {
		c.opts.Logger.WarnCtx(ctx, "cluster: no usable workers, running grid locally")
	}
	ctx, sp := telemetry.StartSpan(ctx, "sweep.local_grid")
	defer sp.End()
	out := make([][]OutcomeRow, len(grid.Traces))
	for ti, gt := range grid.Traces {
		compiled, err := jrpm.Compile(gt.Source, grid.Opts)
		if err != nil {
			return nil, fmt.Errorf("cluster: local compile %s: %w", gt.Name, err)
		}
		outs := compiled.SweepTrace(ctx, gt.Data, grid.Configs, grid.Opts, 0)
		out[ti] = EncodeOutcomes(outs)
		metrics.onLocalShard()
		if onRow != nil && ctx.Err() == nil {
			for ci, row := range out[ti] {
				onRow(ti, ci, row)
			}
		}
	}
	if err := context.Cause(ctx); err != nil && ctx.Err() != nil {
		return nil, err
	}
	return &Result{Outcomes: out, Degraded: degraded, Metrics: metrics.Snapshot()}, nil
}

// SweepRecording adapts Sweep to the one-recording signature used by the
// internal/experiments ablation grids (experiments.GridSweeper).
func (c *Coordinator) SweepRecording(ctx context.Context, name, source string, data []byte, cfgs []hydra.Config, opts jrpm.Options) ([]OutcomeRow, error) {
	res, err := c.Sweep(ctx, Grid{
		Traces:  []GridTrace{{Name: name, Source: source, Data: data}},
		Configs: cfgs,
		Opts:    opts,
	})
	if err != nil {
		return nil, err
	}
	return res.Outcomes[0], nil
}

// Local runs sweep grids in-process with trace.Sweep; it satisfies the
// same GridSweeper shape as a Coordinator, so callers switch between
// local and distributed execution with one value.
type Local struct {
	// Workers bounds replay parallelism; <= 0 means GOMAXPROCS.
	Workers int
}

// SweepRecording compiles the program and replays the recording under
// every configuration locally.
func (l Local) SweepRecording(ctx context.Context, name, source string, data []byte, cfgs []hydra.Config, opts jrpm.Options) ([]OutcomeRow, error) {
	opts = jrpm.Normalize(opts)
	compiled, err := jrpm.Compile(source, opts)
	if err != nil {
		return nil, fmt.Errorf("cluster: compile %s: %w", name, err)
	}
	return EncodeOutcomes(compiled.SweepTrace(ctx, data, cfgs, opts, l.Workers)), nil
}

// ---------------------------------------------------------------------------
// Scheduler

// task is one dispatchable shard: a contiguous config range of one grid
// trace. A sentinel task re-executes its target's range for the
// determinism check and never merges.
type task struct {
	trace  int
	lo, hi int

	sentinelOf *task   // non-nil on sentinel copies
	sentinels  []*task // on primaries: attached sentinel copies

	attempts int // finished (failed) attempts
	queued   int // copies sitting in worker queues
	inflight int // active attempts
	hedged   bool
	done     bool
	skipped  bool // sentinel abandoned (no worker could run it)
	rows     []OutcomeRow
	by       string // worker that produced rows
}

type flight struct {
	t      *task
	worker int
	start  time.Time
	cancel context.CancelFunc
}

// schedWorker is one fleet member's scheduling state for the duration
// of a sweep. Workers are appended as the fleet grows and flagged
// retired (never removed, so indices stay stable) as it shrinks.
type schedWorker struct {
	id           string
	client       *workerClient
	queue        []*task
	retired      bool
	consecFail   int
	breakerUntil time.Time
}

// traceStore tracks where each recording's replicas live during a
// sweep. All access is under sched.mu.
type traceStore struct {
	entries map[string]*storeEntry
	total   int64 // sum of holder counts across entries
}

type storeEntry struct {
	holders map[string]string // member ID -> base URL peers can fetch from
	pending map[string]bool   // replica transfers in flight, by target ID
	lost    bool              // a holder departed; next pull is a re-replication
	seeding bool              // a coordinator push (first placement) is in flight
}

type sched struct {
	c       *Coordinator
	grid    *Grid
	keys    []string
	metrics *Metrics
	onRow   func(int, int, OutcomeRow)

	mu            sync.Mutex
	cond          *sync.Cond
	ctx           context.Context
	workers       []*schedWorker
	byID          map[string]int
	flights       map[*flight]struct{}
	primaries     []*task
	remaining     int
	sentinelsLeft int
	err           error
	closed        bool
	running       int             // live worker goroutines
	localInflight int             // asynchronous local-fallback executions
	refused       map[string]bool // members refused this sweep (format mismatch)
	timers        []*time.Timer
	store         *traceStore

	emitMu sync.Mutex // serializes onRow callbacks

	compileOnce []sync.Once
	compiled    []*jrpm.Compiled
	compileErr  []error
}

func newSched(c *Coordinator, grid *Grid, keys []string, members []fleet.Member, metrics *Metrics, onRow func(int, int, OutcomeRow)) *sched {
	s := &sched{
		c:           c,
		grid:        grid,
		keys:        keys,
		metrics:     metrics,
		onRow:       onRow,
		byID:        map[string]int{},
		flights:     map[*flight]struct{}{},
		refused:     map[string]bool{},
		store:       &traceStore{entries: map[string]*storeEntry{}},
		compileOnce: make([]sync.Once, len(grid.Traces)),
		compiled:    make([]*jrpm.Compiled, len(grid.Traces)),
		compileErr:  make([]error, len(grid.Traces)),
	}
	s.cond = sync.NewCond(&s.mu)
	for _, m := range members {
		s.byID[m.ID] = len(s.workers)
		s.workers = append(s.workers, &schedWorker{id: m.ID, client: c.client(m)})
	}
	for _, key := range keys {
		if s.store.entries[key] == nil {
			s.store.entries[key] = &storeEntry{holders: map[string]string{}, pending: map[string]bool{}}
		}
	}

	size := c.opts.ShardConfigs
	w := len(s.workers)
	for ti := range grid.Traces {
		for lo := 0; lo < len(grid.Configs); lo += size {
			hi := lo + size
			if hi > len(grid.Configs) {
				hi = len(grid.Configs)
			}
			t := &task{trace: ti, lo: lo, hi: hi}
			s.primaries = append(s.primaries, t)
			// Trace affinity: all of a trace's shards start on one worker,
			// so each recording ships once; idle workers rebalance by
			// stealing (and then pull the recording themselves, once).
			s.enqueueLocked(ti%w, t)
		}
	}
	s.remaining = len(s.primaries)

	if w >= 2 && c.opts.Sentinels > 0 {
		n := c.opts.Sentinels
		if n > len(s.primaries) {
			n = len(s.primaries)
		}
		for i := 0; i < n; i++ {
			p := s.primaries[i]
			sent := &task{trace: p.trace, lo: p.lo, hi: p.hi, sentinelOf: p}
			p.sentinels = append(p.sentinels, sent)
			s.enqueueLocked((p.trace+1)%w, sent)
			s.sentinelsLeft++
		}
	}
	return s
}

func (s *sched) enqueueLocked(w int, t *task) {
	t.queued++
	s.workers[w].queue = append(s.workers[w].queue, t)
}

// terminalLocked reports whether worker loops should exit.
func (s *sched) terminalLocked() bool {
	return s.err != nil || s.ctx.Err() != nil || (s.remaining == 0 && s.sentinelsLeft == 0)
}

// leastLoadedLocked returns the live worker with the shortest queue,
// preferring any worker over avoid but falling back to avoid when it is
// the only one left; -1 when no live worker exists.
func (s *sched) leastLoadedLocked(avoid int) int {
	best := -1
	for i, w := range s.workers {
		if w.retired || i == avoid {
			continue
		}
		if best < 0 || len(w.queue) < len(s.workers[best].queue) {
			best = i
		}
	}
	if best < 0 && avoid >= 0 && avoid < len(s.workers) && !s.workers[avoid].retired {
		best = avoid
	}
	return best
}

// next blocks until worker w has a shard to run (its own queue first,
// then stealing from the longest other queue) or the sweep is over (or
// the worker itself has been retired from the fleet).
func (s *sched) next(w int) (*task, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.terminalLocked() || s.workers[w].retired {
			return nil, false
		}
		// Circuit breaker: while open, this worker takes no new work. The
		// sleep is chunked so a completed sweep never waits out a cooldown.
		if wait := time.Until(s.workers[w].breakerUntil); wait > 0 {
			if wait > 10*time.Millisecond {
				wait = 10 * time.Millisecond
			}
			s.mu.Unlock()
			select {
			case <-time.After(wait):
			case <-s.ctx.Done():
			}
			s.mu.Lock()
			continue
		}
		if t := s.popLocked(w); t != nil {
			return t, false
		}
		// Work stealing: this worker drained early; take the oldest
		// queued shard from the most loaded live peer.
		best, bestLen := -1, 0
		if !s.c.opts.DisableStealing {
			for i, pw := range s.workers {
				if i != w && !pw.retired && len(pw.queue) > bestLen {
					best, bestLen = i, len(pw.queue)
				}
			}
		}
		if best >= 0 {
			if t := s.popLocked(best); t != nil {
				return t, true
			}
			continue
		}
		s.cond.Wait()
	}
}

// popLocked pops the front of worker w's queue, skipping tasks already
// completed by another copy or abandoned.
func (s *sched) popLocked(w int) *task {
	q := s.workers[w].queue
	for len(q) > 0 {
		t := q[0]
		q = q[1:]
		s.workers[w].queue = q
		t.queued--
		if !t.done && !t.skipped {
			return t
		}
	}
	return nil
}

// spawnLocked starts worker w's dispatch loop.
func (s *sched) spawnLocked(w int) {
	s.running++
	go s.workerLoop(w)
}

func (s *sched) workerLoop(w int) {
	defer func() {
		s.mu.Lock()
		s.running--
		s.cond.Broadcast()
		s.mu.Unlock()
	}()
	for {
		t, stolen := s.next(w)
		if t == nil {
			return
		}
		s.metrics.onDispatch(s.workers[w].client.name, stolen)
		s.attempt(w, t)
	}
}

// run executes the scheduler until the grid is merged or failed. The
// completion signal is the task ledger (remaining + sentinelsLeft), not
// worker-goroutine exit: with a dynamic fleet, workers come and go
// while the sweep runs.
func (s *sched) run(ctx context.Context) error {
	s.mu.Lock()
	s.ctx = ctx
	for w := range s.workers {
		s.spawnLocked(w)
	}
	nWorkers := len(s.workers)
	s.mu.Unlock()

	stop := make(chan struct{})
	go func() { // wake sleepers on cancellation
		select {
		case <-ctx.Done():
			s.cond.Broadcast()
		case <-stop:
		}
	}()
	if s.c.opts.HedgeAfter > 0 && (s.c.dynamic || nWorkers >= 2) {
		go s.hedgeMonitor(stop)
	}
	if s.c.dynamic || s.c.opts.Replicas > 1 {
		go s.fleetMonitor(stop)
	}

	s.mu.Lock()
	for !s.terminalLocked() {
		s.cond.Wait()
	}
	s.mu.Unlock()
	close(stop)

	s.mu.Lock()
	// Drain straggler goroutines (worker loops see the terminal state
	// and exit; async local fallbacks finish) before merge reads tasks.
	for s.running > 0 || s.localInflight > 0 {
		s.cond.Wait()
	}
	s.closed = true
	for _, tm := range s.timers {
		tm.Stop()
	}
	err := s.err
	s.mu.Unlock()
	if err != nil {
		return err
	}
	if ctx.Err() != nil {
		return context.Cause(ctx)
	}
	return nil
}

// attempt runs one dispatch of t on worker w and routes the outcome
// through the completion / retry / breaker machinery.
func (s *sched) attempt(w int, t *task) {
	s.mu.Lock()
	if t.done || t.skipped || s.terminalLocked() {
		s.mu.Unlock()
		return
	}
	actx, cancel := context.WithTimeout(s.ctx, s.c.opts.ShardTimeout)
	fl := &flight{t: t, worker: w, start: time.Now(), cancel: cancel}
	t.inflight++
	s.flights[fl] = struct{}{}
	s.mu.Unlock()

	rows, err := s.execute(actx, w, t)
	cancel()

	s.mu.Lock()
	delete(s.flights, fl)
	t.inflight--
	if t.done || t.skipped { // hedge loser: a peer already completed this shard
		s.mu.Unlock()
		return
	}
	sw := s.workers[w]
	name := sw.client.name
	if err == nil {
		sw.consecFail = 0
		s.completeLocked(t, rows, name)
		s.mu.Unlock()
		s.emit(t)
		s.metrics.onComplete(name, time.Since(fl.start))
		return
	}

	// Failure path.
	var breakerOpened, retried, localRun bool
	sw.consecFail++
	if sw.consecFail >= s.c.opts.BreakerThreshold && time.Now().After(sw.breakerUntil) {
		sw.breakerUntil = time.Now().Add(s.c.opts.BreakerCooldown)
		sw.consecFail = 0 // half-open after cooldown: one probe re-trips it after Threshold more
		breakerOpened = true
	}
	if s.ctx.Err() != nil {
		s.cond.Broadcast()
		s.mu.Unlock()
		s.metrics.onFailure(name)
		return
	}
	t.attempts++
	switch {
	case t.inflight > 0 || t.queued > 0:
		// Another copy of this shard is still in play; let it decide.
	case t.attempts >= s.c.opts.MaxAttempts:
		if t.sentinelOf != nil {
			// A sentinel that cannot run is a skipped check, not a failure.
			t.skipped = true
			s.sentinelsLeft--
			s.cond.Broadcast()
		} else if !s.c.opts.DisableLocalFallback {
			localRun = true
		} else {
			s.err = fmt.Errorf("cluster: shard (trace %d, configs [%d,%d)) failed %d attempts, last: %w",
				t.trace, t.lo, t.hi, t.attempts, err)
			s.cond.Broadcast()
		}
	default:
		retried = true
		t.queued++ // reserved until the timer requeues it
		delay := s.c.backoff(t.attempts)
		avoid := w
		tm := time.AfterFunc(delay, func() { s.requeue(t, avoid) })
		s.timers = append(s.timers, tm)
	}
	attempts := t.attempts
	sctx := s.ctx
	s.mu.Unlock()

	log := s.c.opts.Logger
	log.WarnCtx(sctx, "cluster: shard attempt failed",
		"worker", name, "trace", t.trace, "lo", t.lo, "hi", t.hi,
		"attempt", attempts, "err", err)
	s.metrics.onFailure(name)
	if breakerOpened {
		s.metrics.onBreakerOpen()
		log.WarnCtx(sctx, "cluster: circuit breaker opened",
			"worker", name, "cooldown", s.c.opts.BreakerCooldown)
	}
	if retried {
		s.metrics.onRetry()
	}
	if localRun {
		log.WarnCtx(sctx, "cluster: shard exhausted cluster attempts, running locally",
			"trace", t.trace, "lo", t.lo, "hi", t.hi)
		s.localShard(t)
	}
}

// emit streams a completed primary's rows to the SweepStream callback.
// Called outside sched.mu (rows are immutable once done); the emit
// mutex keeps callbacks serialized.
func (s *sched) emit(t *task) {
	if s.onRow == nil || t.sentinelOf != nil {
		return
	}
	s.emitMu.Lock()
	defer s.emitMu.Unlock()
	for i, row := range t.rows {
		s.onRow(t.trace, t.lo+i, row)
	}
}

// completeLocked records a shard's rows, cancels competing attempts, and
// fires the sentinel comparison when both sides are in.
func (s *sched) completeLocked(t *task, rows []OutcomeRow, by string) {
	t.done = true
	t.rows = rows
	t.by = by
	for fl := range s.flights {
		if fl.t == t {
			fl.cancel()
		}
	}
	if t.sentinelOf != nil {
		s.sentinelsLeft--
		if t.sentinelOf.done {
			s.checkSentinelLocked(t.sentinelOf, t)
		}
	} else {
		s.remaining--
		for _, sent := range t.sentinels {
			if sent.done {
				s.checkSentinelLocked(t, sent)
			}
		}
	}
	s.cond.Broadcast()
}

// checkSentinelLocked compares a primary shard's canonical bytes with
// its sentinel re-execution.
func (s *sched) checkSentinelLocked(primary, sent *task) {
	s.metrics.onSentinel()
	pb, perr := Canonical(primary.rows)
	sb, serr := Canonical(sent.rows)
	if perr != nil || serr != nil {
		s.err = fmt.Errorf("%w: encoding failed (%v, %v)", ErrDeterminism, perr, serr)
	} else if !bytes.Equal(pb, sb) {
		s.err = fmt.Errorf("%w: shard (trace %d, configs [%d,%d)) differs between %s and %s",
			ErrDeterminism, primary.trace, primary.lo, primary.hi, primary.by, sent.by)
	}
	if s.err != nil {
		s.cond.Broadcast()
	}
}

// reassignLocked routes a dequeued task to a live worker, or — when the
// fleet has none — to the local fallback (primaries) or a skipped check
// (sentinels). Tasks with another copy still in play are dropped; that
// copy decides.
func (s *sched) reassignLocked(t *task, avoid int) {
	if t.done || t.skipped {
		return
	}
	if best := s.leastLoadedLocked(avoid); best >= 0 {
		s.enqueueLocked(best, t)
		return
	}
	if t.inflight > 0 || t.queued > 0 {
		return
	}
	if t.sentinelOf != nil {
		t.skipped = true
		s.sentinelsLeft--
		return
	}
	if s.c.opts.DisableLocalFallback {
		if s.err == nil {
			s.err = fmt.Errorf("cluster: shard (trace %d, configs [%d,%d)) stranded: no live workers remain",
				t.trace, t.lo, t.hi)
		}
		return
	}
	s.goLocalLocked(t)
}

// goLocalLocked runs the local fallback for t on its own goroutine,
// tracked so run() never merges while one is still writing.
func (s *sched) goLocalLocked(t *task) {
	s.localInflight++
	go func() {
		s.localShard(t)
		s.mu.Lock()
		s.localInflight--
		s.cond.Broadcast()
		s.mu.Unlock()
	}()
}

// requeue puts a retried shard back on the least-loaded live worker,
// avoiding the one that just failed it when there is a choice.
func (s *sched) requeue(t *task, avoid int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t.queued-- // drop the reservation taken when the timer was armed
	if s.closed || t.done || s.terminalLocked() {
		s.cond.Broadcast()
		return
	}
	s.reassignLocked(t, avoid)
	s.cond.Broadcast()
}

// hedgeMonitor scans in-flight shards and re-dispatches stragglers to a
// second worker; the first result wins and the loser is canceled.
func (s *sched) hedgeMonitor(stop <-chan struct{}) {
	tick := time.NewTicker(s.c.opts.HedgeInterval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		var hedges int
		s.mu.Lock()
		if s.terminalLocked() {
			s.mu.Unlock()
			return
		}
		for fl := range s.flights {
			t := fl.t
			if t.done || t.hedged || t.queued > 0 || time.Since(fl.start) < s.c.opts.HedgeAfter {
				continue
			}
			best := -1
			for i, pw := range s.workers {
				if i == fl.worker || pw.retired {
					continue
				}
				if best < 0 || len(pw.queue) < len(s.workers[best].queue) {
					best = i
				}
			}
			if best < 0 {
				break
			}
			t.hedged = true
			s.enqueueLocked(best, t)
			hedges++
		}
		if hedges > 0 {
			s.cond.Broadcast()
		}
		s.mu.Unlock()
		for i := 0; i < hedges; i++ {
			s.metrics.onHedge()
		}
	}
}

// ---------------------------------------------------------------------------
// Fleet dynamics

// fleetMonitor periodically re-snapshots the membership (dynamic
// fleets) and reconciles replica placement (Replicas > 1).
func (s *sched) fleetMonitor(stop <-chan struct{}) {
	tick := time.NewTicker(s.c.opts.MembershipInterval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		if s.c.dynamic {
			s.reconcile()
		}
		if s.c.opts.Replicas > 1 {
			s.replicateTick()
		}
	}
}

// reconcile diffs the current membership snapshot against the
// scheduler's worker set: departed members are retired (their shards
// stolen back), new members are preflighted and admitted.
func (s *sched) reconcile() {
	mctx, cancel := context.WithTimeout(s.ctx, s.c.opts.PingTimeout)
	members, err := s.c.membership.Members(mctx)
	cancel()
	if err != nil {
		// A registry blip must not retire live workers; try again next
		// tick.
		s.c.opts.Logger.DebugCtx(s.ctx, "cluster: membership snapshot failed", "err", err)
		return
	}
	seen := map[string]bool{}
	for _, m := range members {
		seen[m.ID] = true
	}

	var joins []fleet.Member
	s.mu.Lock()
	if s.closed || s.terminalLocked() {
		s.mu.Unlock()
		return
	}
	for _, w := range s.workers {
		if !w.retired && !seen[w.id] {
			s.retireLocked(w)
		}
	}
	for _, m := range members {
		if s.refused[m.ID] {
			continue
		}
		if idx, ok := s.byID[m.ID]; ok && !s.workers[idx].retired {
			continue
		}
		joins = append(joins, m)
	}
	s.mu.Unlock()
	for _, m := range joins {
		s.admit(m)
	}
}

// retireLocked removes a departed worker from scheduling: its queued
// shards move to live workers (or the local fallback), its in-flight
// attempts are canceled so the retry machinery re-routes them, and its
// residency memo and replica holdings are dropped.
func (s *sched) retireLocked(w *schedWorker) {
	if w.retired {
		return
	}
	w.retired = true
	idx := s.byID[w.id]
	w.client.forgetAll()
	s.c.dropClient(w.id)
	for _, e := range s.store.entries {
		if e.holders[w.id] != "" {
			delete(e.holders, w.id)
			e.lost = true
			s.store.total--
		}
		delete(e.pending, w.id)
	}
	s.metrics.setReplicaGauge(s.store.total)
	for fl := range s.flights {
		if fl.worker == idx {
			fl.cancel()
		}
	}
	q := w.queue
	w.queue = nil
	for _, t := range q {
		t.queued--
		s.reassignLocked(t, idx)
	}
	s.metrics.onMemberLeave()
	s.c.opts.Logger.WarnCtx(s.ctx, "cluster: worker left the fleet, shards stolen back",
		"worker", w.client.name, "requeued", len(q))
	s.cond.Broadcast()
}

// admit preflights a joining member and, if healthy, adds it to the
// worker set (or revives its retired slot) and starts its dispatch
// loop. The new worker has an empty queue; it picks up work by
// stealing, retries and hedges.
func (s *sched) admit(m fleet.Member) {
	wc := s.c.client(m)
	pctx, cancel := context.WithTimeout(s.ctx, s.c.opts.PingTimeout)
	vi, err := wc.version(pctx)
	var ready bool
	if err == nil {
		ready, err = wc.ready(pctx)
	}
	cancel()
	if err != nil || !ready {
		// Not reachable/ready yet; the next reconcile retries.
		return
	}
	if vi.TraceFormat != trace.Version {
		s.mu.Lock()
		s.refused[m.ID] = true
		s.mu.Unlock()
		s.c.opts.Logger.WarnCtx(s.ctx, "cluster: joining worker refused (trace format mismatch)",
			"worker", m.ID, "worker_format", vi.TraceFormat, "coordinator_format", trace.Version)
		return
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.terminalLocked() {
		return
	}
	if idx, ok := s.byID[m.ID]; ok {
		w := s.workers[idx]
		if !w.retired {
			return
		}
		w.retired = false
		w.client = wc
		w.consecFail = 0
		w.breakerUntil = time.Time{}
		s.spawnLocked(idx)
	} else {
		s.byID[m.ID] = len(s.workers)
		s.workers = append(s.workers, &schedWorker{id: m.ID, client: wc})
		s.spawnLocked(len(s.workers) - 1)
	}
	s.metrics.onMemberJoin()
	s.c.opts.Logger.InfoCtx(s.ctx, "cluster: worker joined the fleet mid-sweep", "worker", m.ID)
	s.cond.Broadcast()
}

// replicateTick drives replica placement toward Replicas holders per
// recording, choosing targets by rendezvous hashing over live workers
// and instructing them to pull from existing holders (never the
// coordinator).
func (s *sched) replicateTick() {
	type pullJob struct {
		key     string
		target  *schedWorker
		sources []string
		relost  bool
	}
	var jobs []pullJob
	s.mu.Lock()
	if s.closed || s.terminalLocked() {
		s.mu.Unlock()
		return
	}
	var live []fleet.Member
	for _, w := range s.workers {
		if !w.retired {
			live = append(live, fleet.Member{ID: w.id, Addr: w.client.base})
		}
	}
	if len(live) == 0 {
		s.mu.Unlock()
		return
	}
	for key, e := range s.store.entries {
		if len(e.holders) == 0 {
			// Not placed anywhere yet; the first shard execution seeds it.
			continue
		}
		want := s.c.opts.Replicas
		if want > len(live) {
			want = len(live)
		}
		if len(e.holders)+len(e.pending) >= want {
			continue
		}
		for _, m := range fleet.Placement(key, live, want) {
			if e.holders[m.ID] != "" || e.pending[m.ID] {
				continue
			}
			sources := s.store.sourcesLocked(key, m.ID)
			if len(sources) == 0 {
				continue
			}
			e.pending[m.ID] = true
			jobs = append(jobs, pullJob{key: key, target: s.workers[s.byID[m.ID]], sources: sources, relost: e.lost})
			if len(e.holders)+len(e.pending) >= want {
				break
			}
		}
	}
	s.mu.Unlock()
	for _, j := range jobs {
		go s.replicateOne(j.key, j.target, j.sources, j.relost)
	}
}

// replicateOne moves one replica worker-to-worker: the target pulls the
// recording from an existing holder.
func (s *sched) replicateOne(key string, target *schedWorker, sources []string, relost bool) {
	ctx, cancel := context.WithTimeout(s.ctx, s.c.opts.ShardTimeout)
	defer cancel()
	ctx, sp := telemetry.StartSpan(ctx, "trace.replicate")
	sp.SetAttr("worker", target.client.name)
	sp.SetAttr("trace.key", key)
	err := target.client.pull(ctx, key, sources)
	sp.Fail(err)
	sp.End()

	s.mu.Lock()
	e := s.store.entries[key]
	delete(e.pending, target.id)
	placed := err == nil && !target.retired
	if placed {
		if e.holders[target.id] == "" {
			e.holders[target.id] = target.client.base
			s.store.total++
			s.metrics.setReplicaGauge(s.store.total)
		}
		e.lost = false
	}
	s.mu.Unlock()
	if placed {
		s.metrics.onReplicaPull(relost)
	} else if err != nil {
		s.c.opts.Logger.DebugCtx(s.ctx, "cluster: replica pull failed",
			"worker", target.client.name, "trace", key, "err", err)
	}
}

// addHolder records that worker sw now holds key's recording.
func (s *sched) addHolder(key string, sw *schedWorker) {
	s.mu.Lock()
	if e := s.store.entries[key]; e != nil && e.holders[sw.id] == "" {
		e.holders[sw.id] = sw.client.base
		s.store.total++
		s.metrics.setReplicaGauge(s.store.total)
	}
	s.mu.Unlock()
	sw.client.markResident(key)
}

// dropHolder forgets a (key, worker) placement after the worker denied
// holding the recording.
func (s *sched) dropHolder(key, id string) {
	s.mu.Lock()
	if e := s.store.entries[key]; e != nil && e.holders[id] != "" {
		delete(e.holders, id)
		e.lost = true
		s.store.total--
		s.metrics.setReplicaGauge(s.store.total)
	}
	s.mu.Unlock()
}

// sourcesLocked lists base URLs of key's holders, excluding one member,
// in deterministic order.
func (st *traceStore) sourcesLocked(key, exclude string) []string {
	e := st.entries[key]
	if e == nil {
		return nil
	}
	ids := make([]string, 0, len(e.holders))
	for id := range e.holders {
		if id != exclude {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = e.holders[id]
	}
	return out
}

// replicaCounts snapshots holders-per-trace for the final metrics.
func (s *sched) replicaCounts() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int, len(s.store.entries))
	for key, e := range s.store.entries {
		out[key] = len(e.holders)
	}
	return out
}

// ---------------------------------------------------------------------------
// Shard execution

// execute is one network attempt: make the recording available on the
// worker, then run the shard. The coordinator ships bytes only when no
// fleet member holds the recording yet; otherwise the worker is handed
// the holders' addresses and fetches peer-to-peer on a cache miss. A
// worker that evicted the trace between placement and dispatch gets
// exactly one coordinator re-push as the liveness backstop.
func (s *sched) execute(ctx context.Context, w int, t *task) (rows []OutcomeRow, err error) {
	sw := s.workers[w]
	wc := sw.client
	ctx, sp := telemetry.StartSpan(ctx, "shard.dispatch")
	sp.SetAttr("worker", wc.name)
	sp.SetInt("shard.trace", int64(t.trace))
	sp.SetInt("shard.lo", int64(t.lo))
	sp.SetInt("shard.hi", int64(t.hi))
	defer func() { sp.Fail(err); sp.End() }()

	key := s.keys[t.trace]
	data := s.grid.Traces[t.trace].Data
	// First placement of a recording is serialized through the seeding
	// gate: exactly one worker receives the coordinator push, everyone
	// else waits for a holder to exist and then fetches peer-to-peer.
	// Without the gate, a worker stealing a shard at sweep start races
	// the affinity worker's first push and the coordinator ships the
	// bytes twice.
	var sources []string
	seeder := false
	s.mu.Lock()
	e := s.store.entries[key]
	for {
		if s.terminalLocked() {
			s.mu.Unlock()
			if cerr := s.ctx.Err(); cerr != nil {
				return nil, cerr
			}
			return nil, errors.New("cluster: sweep already terminal")
		}
		if e.holders[sw.id] != "" {
			break
		}
		if srcs := s.store.sourcesLocked(key, sw.id); len(srcs) > 0 {
			sources = srcs
			break
		}
		if !e.seeding {
			e.seeding, seeder = true, true
			break
		}
		s.cond.Wait()
	}
	s.mu.Unlock()
	if seeder {
		pushed, perr := wc.ensureTrace(ctx, key, data)
		if pushed {
			s.metrics.onPush(wc.name)
		}
		s.mu.Lock()
		e.seeding = false
		s.cond.Broadcast()
		s.mu.Unlock()
		if perr != nil {
			return nil, perr
		}
		s.addHolder(key, sw)
	}
	req := s.shardReq(t)
	req.Sources = sources
	rows, err = wc.runShard(ctx, req)
	if errors.Is(err, errTraceMissing) {
		// Peer fetch failed or an eviction raced the dispatch: one
		// coordinator re-push keeps the shard alive.
		wc.forget(key)
		s.dropHolder(key, sw.id)
		pushed, perr := wc.ensureTrace(ctx, key, data)
		if pushed {
			s.metrics.onPush(wc.name)
		}
		if perr != nil {
			return nil, perr
		}
		rows, err = wc.runShard(ctx, req)
	}
	if err == nil {
		s.addHolder(key, sw)
	}
	return rows, err
}

func (s *sched) shardReq(t *task) ShardRequest {
	gt := s.grid.Traces[t.trace]
	return ShardRequest{
		TraceKey: s.keys[t.trace],
		Source:   gt.Source,
		Optimize: s.grid.Opts.Optimize,
		Annot:    s.grid.Opts.Annot,
		Tracer:   s.grid.Opts.Tracer,
		Select:   s.grid.Opts.Select,
		Configs:  s.grid.Configs[t.lo:t.hi],
	}
}

// localShard executes one exhausted shard in-process — the graceful
// degradation path when the fleet cannot run it.
func (s *sched) localShard(t *task) {
	ctx, sp := telemetry.StartSpan(s.ctx, "shard.local")
	sp.SetInt("shard.trace", int64(t.trace))
	sp.SetInt("shard.lo", int64(t.lo))
	sp.SetInt("shard.hi", int64(t.hi))
	ti := t.trace
	s.compileOnce[ti].Do(func() {
		s.compiled[ti], s.compileErr[ti] = jrpm.Compile(s.grid.Traces[ti].Source, s.grid.Opts)
	})
	var rows []OutcomeRow
	err := s.compileErr[ti]
	if err == nil {
		outs := s.compiled[ti].SweepTrace(ctx, s.grid.Traces[ti].Data, s.grid.Configs[t.lo:t.hi], s.grid.Opts, 0)
		rows = EncodeOutcomes(outs)
		for _, o := range outs {
			if o.Err != nil && (errors.Is(o.Err, context.Canceled) || errors.Is(o.Err, context.DeadlineExceeded)) {
				err = o.Err
				break
			}
		}
	}
	sp.Fail(err)
	sp.End()
	s.mu.Lock()
	if t.done {
		s.mu.Unlock()
		return
	}
	if err != nil {
		if s.err == nil && s.ctx.Err() == nil {
			s.err = fmt.Errorf("cluster: local fallback for shard (trace %d, configs [%d,%d)): %w", t.trace, t.lo, t.hi, err)
		}
		s.cond.Broadcast()
		s.mu.Unlock()
		return
	}
	s.metrics.onLocalShard()
	s.completeLocked(t, rows, "local")
	s.mu.Unlock()
	s.emit(t)
}

// merge assembles the [trace][config] outcome matrix; every cell must be
// produced by exactly one completed primary shard.
func (s *sched) merge() ([][]OutcomeRow, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([][]OutcomeRow, len(s.grid.Traces))
	for ti := range out {
		out[ti] = make([]OutcomeRow, len(s.grid.Configs))
	}
	filled := make([][]bool, len(s.grid.Traces))
	for ti := range filled {
		filled[ti] = make([]bool, len(s.grid.Configs))
	}
	for _, t := range s.primaries {
		if !t.done {
			return nil, fmt.Errorf("cluster: internal: shard (trace %d, configs [%d,%d)) never completed", t.trace, t.lo, t.hi)
		}
		if len(t.rows) != t.hi-t.lo {
			return nil, fmt.Errorf("cluster: internal: shard (trace %d, configs [%d,%d)) has %d rows", t.trace, t.lo, t.hi, len(t.rows))
		}
		for i, row := range t.rows {
			ci := t.lo + i
			if filled[t.trace][ci] {
				return nil, fmt.Errorf("cluster: internal: config (trace %d, config %d) merged twice", t.trace, ci)
			}
			filled[t.trace][ci] = true
			out[t.trace][ci] = row
		}
	}
	for ti := range filled {
		for ci, ok := range filled[ti] {
			if !ok {
				return nil, fmt.Errorf("cluster: internal: config (trace %d, config %d) lost", ti, ci)
			}
		}
	}
	return out, nil
}
