package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"jrpm"
	"jrpm/internal/hydra"
	"jrpm/internal/service"
	"jrpm/internal/telemetry"
	"jrpm/internal/trace"
)

// Options tunes the coordinator. The zero value of every field is
// replaced by a sane default; fields documented as "< 0 disables" use
// the negative range as the explicit off switch.
type Options struct {
	// Workers lists jrpmd worker addresses (host:port or full URLs).
	// Empty means every sweep runs locally.
	Workers []string
	// ShardConfigs is the number of grid configs per shard; <= 0 means 4.
	ShardConfigs int
	// MaxAttempts bounds dispatch attempts per shard before giving up on
	// the cluster (local fallback, unless disabled); <= 0 means 4.
	MaxAttempts int
	// RetryBase/RetryMax shape the exponential backoff between attempts
	// (base*2^n with ±50% jitter, capped); defaults 50ms / 2s.
	RetryBase time.Duration
	RetryMax  time.Duration
	// BreakerThreshold consecutive failures open a worker's circuit
	// breaker for BreakerCooldown; defaults 3 / 2s.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// HedgeAfter re-dispatches a still-running shard to a second worker
	// after this long; <= 0 means 500ms, < 0 disables hedging.
	HedgeAfter time.Duration
	// HedgeInterval is the straggler scan period; <= 0 means 25ms.
	HedgeInterval time.Duration
	// Sentinels is the number of leading shards re-executed on a second
	// worker for the determinism check; 0 means 1, < 0 disables.
	Sentinels int
	// ShardTimeout bounds one shard round trip; <= 0 means 60s.
	ShardTimeout time.Duration
	// PingTimeout bounds the version preflight; <= 0 means 2s.
	PingTimeout time.Duration
	// DisableLocalFallback turns exhausted-shard and no-worker local
	// execution into hard errors.
	DisableLocalFallback bool
	// DisableStealing pins every shard to its affinity worker (plus
	// retries and hedges); idle workers wait instead of stealing.
	DisableStealing bool
	// Seed fixes the jitter RNG (tests); 0 means 1.
	Seed int64
	// Logger receives scheduling events (worker exclusions, shard
	// failures, breaker trips, fallbacks); nil is silent. All methods of
	// a nil *telemetry.Logger are no-ops, so call sites don't guard.
	Logger *telemetry.Logger
}

func (o Options) withDefaults() Options {
	if o.ShardConfigs <= 0 {
		o.ShardConfigs = 4
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 4
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 50 * time.Millisecond
	}
	if o.RetryMax <= 0 {
		o.RetryMax = 2 * time.Second
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 2 * time.Second
	}
	if o.HedgeAfter == 0 {
		o.HedgeAfter = 500 * time.Millisecond
	}
	if o.HedgeInterval <= 0 {
		o.HedgeInterval = 25 * time.Millisecond
	}
	if o.Sentinels == 0 {
		o.Sentinels = 1
	}
	if o.ShardTimeout <= 0 {
		o.ShardTimeout = 60 * time.Second
	}
	if o.PingTimeout <= 0 {
		o.PingTimeout = 2 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Coordinator drives distributed sweeps. It is stateless between Sweep
// calls except for the worker trace-residency bookkeeping, so one
// coordinator can run many grids against the same fleet and ship each
// recording to each worker at most once.
type Coordinator struct {
	opts    Options
	clients []*workerClient

	rngMu sync.Mutex
	rng   *rand.Rand
}

// New builds a coordinator for a fixed worker fleet.
func New(opts Options) *Coordinator {
	opts = opts.withDefaults()
	c := &Coordinator{opts: opts, rng: rand.New(rand.NewSource(opts.Seed))}
	for _, addr := range opts.Workers {
		c.clients = append(c.clients, newWorkerClient(addr, 0))
	}
	return c
}

func (c *Coordinator) jitter(d time.Duration) time.Duration {
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	return d/2 + time.Duration(c.rng.Int63n(int64(d)))
}

func (c *Coordinator) backoff(attempt int) time.Duration {
	d := c.opts.RetryBase
	for i := 1; i < attempt && d < c.opts.RetryMax; i++ {
		d *= 2
	}
	if d > c.opts.RetryMax {
		d = c.opts.RetryMax
	}
	return c.jitter(d)
}

// preflight version- and readiness-checks every worker. Unreachable or
// draining workers are excluded (they may come back; the breaker would
// exclude them anyway); reachable workers with a different trace-format
// version are refusals — mixing formats corrupts results, so they are
// reported as hard errors.
func (c *Coordinator) preflight(ctx context.Context) (healthy []*workerClient, refusals []error) {
	pctx, cancel := context.WithTimeout(ctx, c.opts.PingTimeout)
	defer cancel()
	vis := make([]VersionInfo, len(c.clients))
	errs := make([]error, len(c.clients))
	ready := make([]bool, len(c.clients))
	readyErrs := make([]error, len(c.clients))
	var wg sync.WaitGroup
	for i, wc := range c.clients {
		wg.Add(1)
		go func(i int, wc *workerClient) {
			defer wg.Done()
			vis[i], errs[i] = wc.version(pctx)
			if errs[i] == nil {
				ready[i], readyErrs[i] = wc.ready(pctx)
			}
		}(i, wc)
	}
	wg.Wait()
	// Iterate in configured order so worker indices (and therefore trace
	// affinity and shard placement) are deterministic.
	for i, wc := range c.clients {
		switch {
		case errs[i] != nil:
			c.opts.Logger.WarnCtx(ctx, "cluster: worker unreachable, excluded",
				"worker", wc.name, "err", errs[i])
		case vis[i].TraceFormat != trace.Version:
			refusals = append(refusals, fmt.Errorf(
				"worker %s: trace format v%d, coordinator speaks v%d (module %q) — refusing mixed-format worker",
				wc.name, vis[i].TraceFormat, trace.Version, vis[i].Module))
		case readyErrs[i] != nil:
			c.opts.Logger.WarnCtx(ctx, "cluster: worker readiness probe failed, excluded",
				"worker", wc.name, "err", readyErrs[i])
		case !ready[i]:
			c.opts.Logger.WarnCtx(ctx, "cluster: worker draining, excluded",
				"worker", wc.name)
		default:
			healthy = append(healthy, wc)
		}
	}
	return healthy, refusals
}

// Sweep runs the grid: shard, dispatch, retry, hedge, steal, verify,
// merge. The returned outcomes are byte-identical (under Canonical) to
// EncodeOutcomes of a local trace.Sweep of every (trace, config) cell.
//
// When ctx carries a telemetry tracer (telemetry.WithTracer), the whole
// sweep is recorded as one distributed trace: a cluster.sweep root span
// with shard.dispatch / trace.push / shard.local children, propagated
// to workers over traceparent headers so their server-side spans join
// the same trace.
func (c *Coordinator) Sweep(ctx context.Context, grid Grid) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, sp := telemetry.StartSpan(ctx, "cluster.sweep")
	sp.SetInt("sweep.traces", int64(len(grid.Traces)))
	sp.SetInt("sweep.configs", int64(len(grid.Configs)))
	sp.SetInt("sweep.workers", int64(len(c.clients)))
	res, err := c.sweep(ctx, grid)
	sp.Fail(err)
	sp.End()
	return res, err
}

func (c *Coordinator) sweep(ctx context.Context, grid Grid) (*Result, error) {
	if len(grid.Traces) == 0 {
		return nil, errors.New("cluster: grid has no traces")
	}
	if len(grid.Configs) == 0 {
		return nil, errors.New("cluster: grid has no configs")
	}
	for i, gt := range grid.Traces {
		if len(gt.Data) == 0 {
			return nil, fmt.Errorf("cluster: trace %d (%s) has no recording bytes", i, gt.Name)
		}
	}
	grid.Opts = jrpm.Normalize(grid.Opts)
	keys := make([]string, len(grid.Traces))
	for i := range grid.Traces {
		keys[i] = service.TraceKeyOf(grid.Traces[i].Data)
	}

	metrics := newMetrics()
	if len(c.clients) == 0 {
		return c.localGrid(ctx, &grid, metrics, false)
	}
	healthy, refusals := c.preflight(ctx)
	if len(healthy) == 0 {
		if len(refusals) > 0 {
			return nil, errors.Join(refusals...)
		}
		if c.opts.DisableLocalFallback {
			return nil, fmt.Errorf("%w: all %d workers unreachable", ErrNoWorkers, len(c.clients))
		}
		return c.localGrid(ctx, &grid, metrics, true)
	}
	if len(refusals) > 0 {
		// Some workers are usable but others speak a different trace
		// format: refuse loudly rather than silently shrinking the fleet.
		return nil, errors.Join(refusals...)
	}

	s := newSched(c, &grid, keys, healthy, metrics)
	if err := s.run(ctx); err != nil {
		return nil, err
	}
	_, msp := telemetry.StartSpan(ctx, "sweep.merge")
	out, err := s.merge()
	msp.Fail(err)
	msp.End()
	if err != nil {
		return nil, err
	}
	return &Result{Outcomes: out, Metrics: metrics.Snapshot()}, nil
}

// localGrid executes the whole grid in-process (no workers configured,
// or none reachable).
func (c *Coordinator) localGrid(ctx context.Context, grid *Grid, metrics *Metrics, degraded bool) (*Result, error) {
	if degraded {
		c.opts.Logger.WarnCtx(ctx, "cluster: no usable workers, running grid locally",
			"workers", len(c.clients))
	}
	ctx, sp := telemetry.StartSpan(ctx, "sweep.local_grid")
	defer sp.End()
	out := make([][]OutcomeRow, len(grid.Traces))
	for ti, gt := range grid.Traces {
		compiled, err := jrpm.Compile(gt.Source, grid.Opts)
		if err != nil {
			return nil, fmt.Errorf("cluster: local compile %s: %w", gt.Name, err)
		}
		outs := compiled.SweepTrace(ctx, gt.Data, grid.Configs, grid.Opts, 0)
		out[ti] = EncodeOutcomes(outs)
		metrics.onLocalShard()
	}
	if err := context.Cause(ctx); err != nil && ctx.Err() != nil {
		return nil, err
	}
	return &Result{Outcomes: out, Degraded: degraded, Metrics: metrics.Snapshot()}, nil
}

// SweepRecording adapts Sweep to the one-recording signature used by the
// internal/experiments ablation grids (experiments.GridSweeper).
func (c *Coordinator) SweepRecording(ctx context.Context, name, source string, data []byte, cfgs []hydra.Config, opts jrpm.Options) ([]OutcomeRow, error) {
	res, err := c.Sweep(ctx, Grid{
		Traces:  []GridTrace{{Name: name, Source: source, Data: data}},
		Configs: cfgs,
		Opts:    opts,
	})
	if err != nil {
		return nil, err
	}
	return res.Outcomes[0], nil
}

// Local runs sweep grids in-process with trace.Sweep; it satisfies the
// same GridSweeper shape as a Coordinator, so callers switch between
// local and distributed execution with one value.
type Local struct {
	// Workers bounds replay parallelism; <= 0 means GOMAXPROCS.
	Workers int
}

// SweepRecording compiles the program and replays the recording under
// every configuration locally.
func (l Local) SweepRecording(ctx context.Context, name, source string, data []byte, cfgs []hydra.Config, opts jrpm.Options) ([]OutcomeRow, error) {
	opts = jrpm.Normalize(opts)
	compiled, err := jrpm.Compile(source, opts)
	if err != nil {
		return nil, fmt.Errorf("cluster: compile %s: %w", name, err)
	}
	return EncodeOutcomes(compiled.SweepTrace(ctx, data, cfgs, opts, l.Workers)), nil
}

// ---------------------------------------------------------------------------
// Scheduler

// task is one dispatchable shard: a contiguous config range of one grid
// trace. A sentinel task re-executes its target's range for the
// determinism check and never merges.
type task struct {
	trace  int
	lo, hi int

	sentinelOf *task   // non-nil on sentinel copies
	sentinels  []*task // on primaries: attached sentinel copies

	attempts int // finished (failed) attempts
	queued   int // copies sitting in worker queues
	inflight int // active attempts
	hedged   bool
	done     bool
	rows     []OutcomeRow
	by       string // worker that produced rows
}

type flight struct {
	t      *task
	worker int
	start  time.Time
	cancel context.CancelFunc
}

type sched struct {
	c       *Coordinator
	grid    *Grid
	keys    []string
	clients []*workerClient
	metrics *Metrics

	mu            sync.Mutex
	cond          *sync.Cond
	ctx           context.Context
	queues        [][]*task
	flights       map[*flight]struct{}
	primaries     []*task
	remaining     int
	sentinelsLeft int
	consecFail    []int
	breakerUntil  []time.Time
	err           error
	closed        bool
	timers        []*time.Timer

	compileOnce []sync.Once
	compiled    []*jrpm.Compiled
	compileErr  []error
}

func newSched(c *Coordinator, grid *Grid, keys []string, clients []*workerClient, metrics *Metrics) *sched {
	s := &sched{
		c:            c,
		grid:         grid,
		keys:         keys,
		clients:      clients,
		metrics:      metrics,
		queues:       make([][]*task, len(clients)),
		flights:      map[*flight]struct{}{},
		consecFail:   make([]int, len(clients)),
		breakerUntil: make([]time.Time, len(clients)),
		compileOnce:  make([]sync.Once, len(grid.Traces)),
		compiled:     make([]*jrpm.Compiled, len(grid.Traces)),
		compileErr:   make([]error, len(grid.Traces)),
	}
	s.cond = sync.NewCond(&s.mu)

	size := c.opts.ShardConfigs
	w := len(clients)
	for ti := range grid.Traces {
		for lo := 0; lo < len(grid.Configs); lo += size {
			hi := lo + size
			if hi > len(grid.Configs) {
				hi = len(grid.Configs)
			}
			t := &task{trace: ti, lo: lo, hi: hi}
			s.primaries = append(s.primaries, t)
			// Trace affinity: all of a trace's shards start on one worker,
			// so each recording ships once; idle workers rebalance by
			// stealing (and then pull the recording themselves, once).
			s.enqueueLocked(ti%w, t)
		}
	}
	s.remaining = len(s.primaries)

	if w >= 2 && c.opts.Sentinels > 0 {
		n := c.opts.Sentinels
		if n > len(s.primaries) {
			n = len(s.primaries)
		}
		for i := 0; i < n; i++ {
			p := s.primaries[i]
			sent := &task{trace: p.trace, lo: p.lo, hi: p.hi, sentinelOf: p}
			p.sentinels = append(p.sentinels, sent)
			s.enqueueLocked((p.trace+1)%w, sent)
			s.sentinelsLeft++
		}
	}
	return s
}

func (s *sched) enqueueLocked(w int, t *task) {
	t.queued++
	s.queues[w] = append(s.queues[w], t)
}

// terminalLocked reports whether worker loops should exit.
func (s *sched) terminalLocked() bool {
	return s.err != nil || s.ctx.Err() != nil || (s.remaining == 0 && s.sentinelsLeft == 0)
}

// next blocks until worker w has a shard to run (its own queue first,
// then stealing from the longest other queue) or the sweep is over.
func (s *sched) next(w int) (*task, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.terminalLocked() {
			return nil, false
		}
		// Circuit breaker: while open, this worker takes no new work. The
		// sleep is chunked so a completed sweep never waits out a cooldown.
		if wait := time.Until(s.breakerUntil[w]); wait > 0 {
			if wait > 10*time.Millisecond {
				wait = 10 * time.Millisecond
			}
			s.mu.Unlock()
			select {
			case <-time.After(wait):
			case <-s.ctx.Done():
			}
			s.mu.Lock()
			continue
		}
		if t := s.popLocked(w); t != nil {
			return t, false
		}
		// Work stealing: this worker drained early; take the oldest
		// queued shard from the most loaded peer.
		best, bestLen := -1, 0
		if !s.c.opts.DisableStealing {
			for i := range s.queues {
				if i != w && len(s.queues[i]) > bestLen {
					best, bestLen = i, len(s.queues[i])
				}
			}
		}
		if best >= 0 {
			if t := s.popLocked(best); t != nil {
				return t, true
			}
			continue
		}
		s.cond.Wait()
	}
}

// popLocked pops the front of queue w, skipping tasks already completed
// by another copy.
func (s *sched) popLocked(w int) *task {
	for len(s.queues[w]) > 0 {
		t := s.queues[w][0]
		s.queues[w] = s.queues[w][1:]
		t.queued--
		if !t.done {
			return t
		}
	}
	return nil
}

// run executes the scheduler until the grid is merged or failed.
func (s *sched) run(ctx context.Context) error {
	s.mu.Lock()
	s.ctx = ctx
	s.mu.Unlock()

	stop := make(chan struct{})
	go func() { // wake sleepers on cancellation
		select {
		case <-ctx.Done():
			s.cond.Broadcast()
		case <-stop:
		}
	}()
	if s.c.opts.HedgeAfter > 0 && len(s.clients) >= 2 {
		go s.hedgeMonitor(stop)
	}

	var wg sync.WaitGroup
	for w := range s.clients {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				t, stolen := s.next(w)
				if t == nil {
					return
				}
				s.metrics.onDispatch(s.clients[w].name, stolen)
				s.attempt(w, t)
			}
		}(w)
	}
	wg.Wait()
	close(stop)

	s.mu.Lock()
	s.closed = true
	for _, tm := range s.timers {
		tm.Stop()
	}
	err := s.err
	s.mu.Unlock()
	if err != nil {
		return err
	}
	if ctx.Err() != nil {
		return context.Cause(ctx)
	}
	return nil
}

// attempt runs one dispatch of t on worker w and routes the outcome
// through the completion / retry / breaker machinery.
func (s *sched) attempt(w int, t *task) {
	s.mu.Lock()
	if t.done || s.terminalLocked() {
		s.mu.Unlock()
		return
	}
	actx, cancel := context.WithTimeout(s.ctx, s.c.opts.ShardTimeout)
	fl := &flight{t: t, worker: w, start: time.Now(), cancel: cancel}
	t.inflight++
	s.flights[fl] = struct{}{}
	s.mu.Unlock()

	rows, err := s.execute(actx, w, t)
	cancel()

	s.mu.Lock()
	delete(s.flights, fl)
	t.inflight--
	if t.done { // hedge loser: a peer already completed this shard
		s.mu.Unlock()
		return
	}
	name := s.clients[w].name
	if err == nil {
		s.consecFail[w] = 0
		s.completeLocked(t, rows, name)
		s.mu.Unlock()
		s.metrics.onComplete(name, time.Since(fl.start))
		return
	}

	// Failure path.
	var breakerOpened, retried, localRun bool
	s.consecFail[w]++
	if s.consecFail[w] >= s.c.opts.BreakerThreshold && time.Now().After(s.breakerUntil[w]) {
		s.breakerUntil[w] = time.Now().Add(s.c.opts.BreakerCooldown)
		s.consecFail[w] = 0 // half-open after cooldown: one probe re-trips it after Threshold more
		breakerOpened = true
	}
	if s.ctx.Err() != nil {
		s.cond.Broadcast()
		s.mu.Unlock()
		s.metrics.onFailure(name)
		return
	}
	t.attempts++
	switch {
	case t.inflight > 0 || t.queued > 0:
		// Another copy of this shard is still in play; let it decide.
	case t.attempts >= s.c.opts.MaxAttempts:
		if t.sentinelOf != nil {
			// A sentinel that cannot run is a skipped check, not a failure.
			s.sentinelsLeft--
			s.cond.Broadcast()
		} else if !s.c.opts.DisableLocalFallback {
			localRun = true
		} else {
			s.err = fmt.Errorf("cluster: shard (trace %d, configs [%d,%d)) failed %d attempts, last: %w",
				t.trace, t.lo, t.hi, t.attempts, err)
			s.cond.Broadcast()
		}
	default:
		retried = true
		t.queued++ // reserved until the timer requeues it
		delay := s.c.backoff(t.attempts)
		avoid := w
		tm := time.AfterFunc(delay, func() { s.requeue(t, avoid) })
		s.timers = append(s.timers, tm)
	}
	attempts := t.attempts
	sctx := s.ctx
	s.mu.Unlock()

	log := s.c.opts.Logger
	log.WarnCtx(sctx, "cluster: shard attempt failed",
		"worker", name, "trace", t.trace, "lo", t.lo, "hi", t.hi,
		"attempt", attempts, "err", err)
	s.metrics.onFailure(name)
	if breakerOpened {
		s.metrics.onBreakerOpen()
		log.WarnCtx(sctx, "cluster: circuit breaker opened",
			"worker", name, "cooldown", s.c.opts.BreakerCooldown)
	}
	if retried {
		s.metrics.onRetry()
	}
	if localRun {
		log.WarnCtx(sctx, "cluster: shard exhausted cluster attempts, running locally",
			"trace", t.trace, "lo", t.lo, "hi", t.hi)
		s.localShard(t)
	}
}

// completeLocked records a shard's rows, cancels competing attempts, and
// fires the sentinel comparison when both sides are in.
func (s *sched) completeLocked(t *task, rows []OutcomeRow, by string) {
	t.done = true
	t.rows = rows
	t.by = by
	for fl := range s.flights {
		if fl.t == t {
			fl.cancel()
		}
	}
	if t.sentinelOf != nil {
		s.sentinelsLeft--
		if t.sentinelOf.done {
			s.checkSentinelLocked(t.sentinelOf, t)
		}
	} else {
		s.remaining--
		for _, sent := range t.sentinels {
			if sent.done {
				s.checkSentinelLocked(t, sent)
			}
		}
	}
	s.cond.Broadcast()
}

// checkSentinelLocked compares a primary shard's canonical bytes with
// its sentinel re-execution.
func (s *sched) checkSentinelLocked(primary, sent *task) {
	s.metrics.onSentinel()
	pb, perr := Canonical(primary.rows)
	sb, serr := Canonical(sent.rows)
	if perr != nil || serr != nil {
		s.err = fmt.Errorf("%w: encoding failed (%v, %v)", ErrDeterminism, perr, serr)
	} else if !bytes.Equal(pb, sb) {
		s.err = fmt.Errorf("%w: shard (trace %d, configs [%d,%d)) differs between %s and %s",
			ErrDeterminism, primary.trace, primary.lo, primary.hi, primary.by, sent.by)
	}
	if s.err != nil {
		s.cond.Broadcast()
	}
}

// requeue puts a retried shard back on the least-loaded worker, avoiding
// the one that just failed it when there is a choice.
func (s *sched) requeue(t *task, avoid int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || t.done || s.terminalLocked() {
		t.queued--
		s.cond.Broadcast()
		return
	}
	best := -1
	for i := range s.queues {
		if i == avoid && len(s.clients) > 1 {
			continue
		}
		if best < 0 || len(s.queues[i]) < len(s.queues[best]) {
			best = i
		}
	}
	s.queues[best] = append(s.queues[best], t)
	s.cond.Broadcast()
}

// hedgeMonitor scans in-flight shards and re-dispatches stragglers to a
// second worker; the first result wins and the loser is canceled.
func (s *sched) hedgeMonitor(stop <-chan struct{}) {
	tick := time.NewTicker(s.c.opts.HedgeInterval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		var hedges int
		s.mu.Lock()
		if s.terminalLocked() {
			s.mu.Unlock()
			return
		}
		for fl := range s.flights {
			t := fl.t
			if t.done || t.hedged || t.queued > 0 || time.Since(fl.start) < s.c.opts.HedgeAfter {
				continue
			}
			best := -1
			for i := range s.queues {
				if i == fl.worker {
					continue
				}
				if best < 0 || len(s.queues[i]) < len(s.queues[best]) {
					best = i
				}
			}
			if best < 0 {
				break
			}
			t.hedged = true
			s.enqueueLocked(best, t)
			hedges++
		}
		if hedges > 0 {
			s.cond.Broadcast()
		}
		s.mu.Unlock()
		for i := 0; i < hedges; i++ {
			s.metrics.onHedge()
		}
	}
}

// execute is one network attempt: make the recording resident (shipping
// bytes only on cache miss), then run the shard; a worker that evicted
// the trace between push and dispatch gets exactly one re-push.
func (s *sched) execute(ctx context.Context, w int, t *task) (rows []OutcomeRow, err error) {
	ctx, sp := telemetry.StartSpan(ctx, "shard.dispatch")
	sp.SetAttr("worker", s.clients[w].name)
	sp.SetInt("shard.trace", int64(t.trace))
	sp.SetInt("shard.lo", int64(t.lo))
	sp.SetInt("shard.hi", int64(t.hi))
	defer func() { sp.Fail(err); sp.End() }()

	wc := s.clients[w]
	key := s.keys[t.trace]
	data := s.grid.Traces[t.trace].Data
	pushed, err := wc.ensureTrace(ctx, key, data)
	if pushed {
		s.metrics.onPush(wc.name)
	}
	if err != nil {
		return nil, err
	}
	rows, err = wc.runShard(ctx, s.shardReq(t))
	if errors.Is(err, errTraceMissing) {
		wc.forget(key)
		pushed, perr := wc.ensureTrace(ctx, key, data)
		if pushed {
			s.metrics.onPush(wc.name)
		}
		if perr != nil {
			return nil, perr
		}
		rows, err = wc.runShard(ctx, s.shardReq(t))
	}
	return rows, err
}

func (s *sched) shardReq(t *task) ShardRequest {
	gt := s.grid.Traces[t.trace]
	return ShardRequest{
		TraceKey: s.keys[t.trace],
		Source:   gt.Source,
		Optimize: s.grid.Opts.Optimize,
		Annot:    s.grid.Opts.Annot,
		Tracer:   s.grid.Opts.Tracer,
		Select:   s.grid.Opts.Select,
		Configs:  s.grid.Configs[t.lo:t.hi],
	}
}

// localShard executes one exhausted shard in-process — the graceful
// degradation path when the fleet cannot run it.
func (s *sched) localShard(t *task) {
	ctx, sp := telemetry.StartSpan(s.ctx, "shard.local")
	sp.SetInt("shard.trace", int64(t.trace))
	sp.SetInt("shard.lo", int64(t.lo))
	sp.SetInt("shard.hi", int64(t.hi))
	ti := t.trace
	s.compileOnce[ti].Do(func() {
		s.compiled[ti], s.compileErr[ti] = jrpm.Compile(s.grid.Traces[ti].Source, s.grid.Opts)
	})
	var rows []OutcomeRow
	err := s.compileErr[ti]
	if err == nil {
		outs := s.compiled[ti].SweepTrace(ctx, s.grid.Traces[ti].Data, s.grid.Configs[t.lo:t.hi], s.grid.Opts, 0)
		rows = EncodeOutcomes(outs)
		for _, o := range outs {
			if o.Err != nil && (errors.Is(o.Err, context.Canceled) || errors.Is(o.Err, context.DeadlineExceeded)) {
				err = o.Err
				break
			}
		}
	}
	sp.Fail(err)
	sp.End()
	s.mu.Lock()
	defer s.mu.Unlock()
	if t.done {
		return
	}
	if err != nil {
		if s.err == nil && s.ctx.Err() == nil {
			s.err = fmt.Errorf("cluster: local fallback for shard (trace %d, configs [%d,%d)): %w", t.trace, t.lo, t.hi, err)
		}
		s.cond.Broadcast()
		return
	}
	s.metrics.onLocalShard()
	s.completeLocked(t, rows, "local")
}

// merge assembles the [trace][config] outcome matrix; every cell must be
// produced by exactly one completed primary shard.
func (s *sched) merge() ([][]OutcomeRow, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([][]OutcomeRow, len(s.grid.Traces))
	for ti := range out {
		out[ti] = make([]OutcomeRow, len(s.grid.Configs))
	}
	filled := make([][]bool, len(s.grid.Traces))
	for ti := range filled {
		filled[ti] = make([]bool, len(s.grid.Configs))
	}
	for _, t := range s.primaries {
		if !t.done {
			return nil, fmt.Errorf("cluster: internal: shard (trace %d, configs [%d,%d)) never completed", t.trace, t.lo, t.hi)
		}
		if len(t.rows) != t.hi-t.lo {
			return nil, fmt.Errorf("cluster: internal: shard (trace %d, configs [%d,%d)) has %d rows", t.trace, t.lo, t.hi, len(t.rows))
		}
		for i, row := range t.rows {
			ci := t.lo + i
			if filled[t.trace][ci] {
				return nil, fmt.Errorf("cluster: internal: config (trace %d, config %d) merged twice", t.trace, ci)
			}
			filled[t.trace][ci] = true
			out[t.trace][ci] = row
		}
	}
	for ti := range filled {
		for ci, ok := range filled[ti] {
			if !ok {
				return nil, fmt.Errorf("cluster: internal: config (trace %d, config %d) lost", ti, ci)
			}
		}
	}
	return out, nil
}
