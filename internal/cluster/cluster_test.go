// Acceptance suite for the distributed sweep cluster. The load-bearing
// property is byte-identity: for every workload, a sweep sharded across
// in-process workers — including under injected mid-sweep worker death —
// must merge into exactly the canonical bytes a local trace.Sweep
// produces, with zero lost or duplicated configurations.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"jrpm"
	"jrpm/internal/hydra"
	"jrpm/internal/service"
	"jrpm/internal/workloads"
)

const testScale = 0.2

// newTestWorker starts an in-process jrpmd-in-worker-mode: the cluster
// endpoints plus the service API (whose /v1/version the coordinator
// preflights), optionally wrapped in a fault-injection middleware.
func newTestWorker(t testing.TB, mw func(http.Handler) http.Handler) (*httptest.Server, *Worker) {
	t.Helper()
	pool := service.NewPool(service.Config{Workers: 2})
	t.Cleanup(pool.Stop)
	w := NewWorker(pool, 0, 2)
	mux := http.NewServeMux()
	w.Register(mux)
	service.NewServer(pool).Register(mux)
	var h http.Handler = mux
	if mw != nil {
		h = mw(mux)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv, w
}

func recordWorkload(t testing.TB, name string) (src string, data []byte) {
	t.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	opts := jrpm.DefaultOptions()
	c, err := jrpm.Compile(w.Source, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := c.ProfileRecord(context.Background(), w.NewInput(testScale), opts, &buf); err != nil {
		t.Fatal(err)
	}
	return w.Source, buf.Bytes()
}

// gridConfigs builds n distinct machine configurations (bank count and
// store-history depth varied together).
func gridConfigs(n int) []hydra.Config {
	banks := []int{1, 2, 4, 8}
	hists := []int{8, 48, 192}
	cfgs := make([]hydra.Config, n)
	for i := range cfgs {
		cfgs[i] = hydra.DefaultConfig()
		cfgs[i].Tracer.Banks = banks[i%len(banks)]
		cfgs[i].Tracer.HeapStoreLines = hists[i%len(hists)]
	}
	return cfgs
}

func localRows(t testing.TB, src string, data []byte, cfgs []hydra.Config) []OutcomeRow {
	t.Helper()
	rows, err := Local{}.SweepRecording(context.Background(), "local", src, data, cfgs, jrpm.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func canonical(t testing.TB, rows []OutcomeRow) []byte {
	t.Helper()
	b, err := Canonical(rows)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// killAfter aborts every shard request past the first n, simulating a
// worker process dying mid-sweep (clients see a torn connection).
func killAfter(n int32) func(http.Handler) http.Handler {
	var count int32
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost && strings.HasPrefix(r.URL.Path, "/v1/shards") {
				if atomic.AddInt32(&count, 1) > n {
					panic(http.ErrAbortHandler)
				}
			}
			next.ServeHTTP(w, r)
		})
	}
}

// TestClusterEquivalence: for every workload, a two-worker distributed
// sweep merges into byte-identical canonical rows — selections,
// estimates, and per-loop tracer tables — both on a healthy fleet and
// with one worker killed mid-sweep.
func TestClusterEquivalence(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Meta.Name, func(t *testing.T) {
			t.Parallel()
			src, data := recordWorkload(t, w.Meta.Name)
			cfgs := gridConfigs(9) // uneven shard split on purpose
			want := canonical(t, localRows(t, src, data, cfgs))
			grid := Grid{
				Traces:  []GridTrace{{Name: w.Meta.Name, Source: src, Data: data}},
				Configs: cfgs,
				Opts:    jrpm.DefaultOptions(),
			}

			t.Run("healthy", func(t *testing.T) {
				s1, _ := newTestWorker(t, nil)
				s2, _ := newTestWorker(t, nil)
				coord := New(Options{
					Workers:      []string{s1.URL, s2.URL},
					ShardConfigs: 2,
					HedgeAfter:   -1,
					Seed:         7,
				})
				res, err := coord.Sweep(context.Background(), grid)
				if err != nil {
					t.Fatal(err)
				}
				if res.Degraded {
					t.Error("healthy fleet reported Degraded")
				}
				if got := canonical(t, res.Outcomes[0]); !bytes.Equal(got, want) {
					t.Error("distributed sweep differs from local trace.Sweep")
				}
				if res.Metrics.SentinelChecks < 1 {
					t.Errorf("sentinel checks = %d, want >= 1", res.Metrics.SentinelChecks)
				}
				if res.Metrics.Dispatched < 5 {
					t.Errorf("dispatched = %d shards, want >= 5", res.Metrics.Dispatched)
				}
			})

			t.Run("worker-killed", func(t *testing.T) {
				dying, _ := newTestWorker(t, killAfter(1))
				healthy, _ := newTestWorker(t, nil)
				coord := New(Options{
					Workers:          []string{dying.URL, healthy.URL},
					ShardConfigs:     2,
					MaxAttempts:      4,
					RetryBase:        time.Millisecond,
					BreakerThreshold: 2,
					BreakerCooldown:  50 * time.Millisecond,
					HedgeAfter:       -1,
					Seed:             7,
				})
				res, err := coord.Sweep(context.Background(), grid)
				if err != nil {
					t.Fatal(err)
				}
				if got := canonical(t, res.Outcomes[0]); !bytes.Equal(got, want) {
					t.Error("sweep with mid-sweep worker death differs from local trace.Sweep")
				}
				if res.Metrics.Failures < 1 {
					t.Errorf("failures = %d, want >= 1 (worker did die, right?)", res.Metrics.Failures)
				}
			})
		})
	}
}

// tamperShards rewrites every successful shard response on its way out,
// corrupting one counter — the model of a worker computing wrong answers
// while speaking the protocol perfectly.
func tamperShards() func(http.Handler) http.Handler {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if !(r.Method == http.MethodPost && strings.HasPrefix(r.URL.Path, "/v1/shards")) {
				next.ServeHTTP(w, r)
				return
			}
			rec := httptest.NewRecorder()
			next.ServeHTTP(rec, r)
			body := rec.Body.Bytes()
			if rec.Code == http.StatusOK {
				var sr ShardResponse
				if json.Unmarshal(body, &sr) == nil && len(sr.Outcomes) > 0 {
					sr.Outcomes[0].TracedCycles++
					body, _ = json.Marshal(sr)
				}
			}
			for k, vs := range rec.Header() {
				if k == "Content-Length" {
					continue
				}
				for _, v := range vs {
					w.Header().Add(k, v)
				}
			}
			w.WriteHeader(rec.Code)
			w.Write(body) //nolint:errcheck
		})
	}
}

// TestClusterSentinelMismatch: a worker returning subtly wrong numbers
// is caught by the sentinel re-execution, and the sweep fails with
// ErrDeterminism instead of merging corrupt rows.
func TestClusterSentinelMismatch(t *testing.T) {
	src, data := recordWorkload(t, "Huffman")
	good, _ := newTestWorker(t, nil)
	evil, _ := newTestWorker(t, tamperShards())
	coord := New(Options{
		Workers:      []string{good.URL, evil.URL},
		ShardConfigs: 2,
		HedgeAfter:   -1,
		Seed:         3,
	})
	_, err := coord.Sweep(context.Background(), Grid{
		Traces:  []GridTrace{{Name: "Huffman", Source: src, Data: data}},
		Configs: gridConfigs(6),
		Opts:    jrpm.DefaultOptions(),
	})
	if !errors.Is(err, ErrDeterminism) {
		t.Fatalf("err = %v, want ErrDeterminism", err)
	}
}

// TestClusterVersionRefusal: a reachable worker speaking a different
// trace-format version poisons the whole fleet — the coordinator refuses
// loudly rather than mixing formats.
func TestClusterVersionRefusal(t *testing.T) {
	healthy, _ := newTestWorker(t, nil)
	alien := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(VersionInfo{Module: "jrpm-future", TraceFormat: 999}) //nolint:errcheck
	}))
	defer alien.Close()

	src, data := recordWorkload(t, "Huffman")
	coord := New(Options{Workers: []string{healthy.URL, alien.URL}})
	_, err := coord.Sweep(context.Background(), Grid{
		Traces:  []GridTrace{{Name: "Huffman", Source: src, Data: data}},
		Configs: gridConfigs(2),
		Opts:    jrpm.DefaultOptions(),
	})
	if err == nil || !strings.Contains(err.Error(), "trace format") {
		t.Fatalf("err = %v, want trace-format refusal", err)
	}
}

// TestClusterLocalDegradation: with every worker unreachable the grid
// runs locally, flagged Degraded, still byte-identical; with the
// fallback disabled it fails with ErrNoWorkers.
func TestClusterLocalDegradation(t *testing.T) {
	src, data := recordWorkload(t, "Huffman")
	cfgs := gridConfigs(4)
	want := canonical(t, localRows(t, src, data, cfgs))
	grid := Grid{
		Traces:  []GridTrace{{Name: "Huffman", Source: src, Data: data}},
		Configs: cfgs,
		Opts:    jrpm.DefaultOptions(),
	}
	// A listener that is closed immediately: connection refused, fast.
	dead := httptest.NewServer(http.NotFoundHandler())
	addr := dead.URL
	dead.Close()

	coord := New(Options{Workers: []string{addr}, PingTimeout: 500 * time.Millisecond})
	res, err := coord.Sweep(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Error("unreachable fleet did not set Degraded")
	}
	if got := canonical(t, res.Outcomes[0]); !bytes.Equal(got, want) {
		t.Error("degraded local sweep differs from trace.Sweep")
	}

	strict := New(Options{Workers: []string{addr}, PingTimeout: 500 * time.Millisecond, DisableLocalFallback: true})
	if _, err := strict.Sweep(context.Background(), grid); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("err = %v, want ErrNoWorkers", err)
	}
}

// TestClusterStealing: trace affinity parks every shard on worker 0; the
// idle worker 1 must rebalance by stealing.
func TestClusterStealing(t *testing.T) {
	src, data := recordWorkload(t, "Huffman")
	s1, _ := newTestWorker(t, nil)
	s2, _ := newTestWorker(t, nil)
	coord := New(Options{
		Workers:      []string{s1.URL, s2.URL},
		ShardConfigs: 1,
		Sentinels:    -1,
		HedgeAfter:   -1,
	})
	cfgs := gridConfigs(12)
	res, err := coord.Sweep(context.Background(), Grid{
		Traces:  []GridTrace{{Name: "Huffman", Source: src, Data: data}},
		Configs: cfgs,
		Opts:    jrpm.DefaultOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Stolen < 1 {
		t.Errorf("stolen = %d, want >= 1", res.Metrics.Stolen)
	}
	if got := canonical(t, res.Outcomes[0]); !bytes.Equal(got, canonical(t, localRows(t, src, data, cfgs))) {
		t.Error("stolen-shard sweep differs from local")
	}
}

// slowShards delays every shard execution on a worker, making it a
// straggler without making it wrong.
func slowShards(d time.Duration) func(http.Handler) http.Handler {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost && strings.HasPrefix(r.URL.Path, "/v1/shards") {
				// Drain the body before sleeping: the server only notices a
				// client disconnect (canceling r.Context) once the request
				// body is consumed, and a hedged winner cancels this request.
				body, _ := io.ReadAll(r.Body)
				r.Body = io.NopCloser(bytes.NewReader(body))
				select {
				case <-time.After(d):
				case <-r.Context().Done():
					return
				}
			}
			next.ServeHTTP(w, r)
		})
	}
}

// TestClusterHedging: a straggling shard is re-dispatched to the idle
// worker; the fast copy's result wins and the merge stays correct.
func TestClusterHedging(t *testing.T) {
	src, data := recordWorkload(t, "Huffman")
	slow, _ := newTestWorker(t, slowShards(2*time.Second))
	fast, _ := newTestWorker(t, nil)
	coord := New(Options{
		Workers:         []string{slow.URL, fast.URL}, // affinity: trace 0 -> slow worker
		ShardConfigs:    4,
		Sentinels:       -1,
		HedgeAfter:      30 * time.Millisecond,
		HedgeInterval:   5 * time.Millisecond,
		DisableStealing: true, // the fast worker must hedge, not steal
	})
	cfgs := gridConfigs(4) // one shard total
	sweepStart := time.Now()
	res, err := coord.Sweep(context.Background(), Grid{
		Traces:  []GridTrace{{Name: "Huffman", Source: src, Data: data}},
		Configs: cfgs,
		Opts:    jrpm.DefaultOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := time.Since(sweepStart); d > time.Second {
		t.Errorf("sweep took %v; the hedged result should win long before the straggler's 2s delay", d)
	} else {
		t.Logf("sweep: %v", d)
	}
	if res.Metrics.Hedged < 1 {
		t.Errorf("hedged = %d, want >= 1", res.Metrics.Hedged)
	}
	if got := canonical(t, res.Outcomes[0]); !bytes.Equal(got, canonical(t, localRows(t, src, data, cfgs))) {
		t.Error("hedged sweep differs from local")
	}
}

// failShards rejects every shard execution with a 500.
func failShards() func(http.Handler) http.Handler {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost && strings.HasPrefix(r.URL.Path, "/v1/shards") {
				http.Error(w, `{"error":"injected"}`, http.StatusInternalServerError)
				return
			}
			next.ServeHTTP(w, r)
		})
	}
}

// TestClusterBreaker: a worker failing every shard trips its circuit
// breaker; the sweep completes on the healthy worker, byte-identical.
func TestClusterBreaker(t *testing.T) {
	src, data := recordWorkload(t, "Huffman")
	broken, _ := newTestWorker(t, failShards())
	healthy, _ := newTestWorker(t, nil)
	coord := New(Options{
		Workers:          []string{broken.URL, healthy.URL},
		ShardConfigs:     1,
		Sentinels:        -1,
		HedgeAfter:       -1,
		RetryBase:        time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  100 * time.Millisecond,
	})
	cfgs := gridConfigs(8)
	res, err := coord.Sweep(context.Background(), Grid{
		Traces:  []GridTrace{{Name: "Huffman", Source: src, Data: data}},
		Configs: cfgs,
		Opts:    jrpm.DefaultOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.BreakerOpens < 1 {
		t.Errorf("breaker opens = %d, want >= 1", res.Metrics.BreakerOpens)
	}
	if got := canonical(t, res.Outcomes[0]); !bytes.Equal(got, canonical(t, localRows(t, src, data, cfgs))) {
		t.Error("breaker-path sweep differs from local")
	}
}

// TestClusterMultiTraceTransfers: two distinct recordings swept in one
// grid; every recording's bytes reach a given worker at most once, even
// across repeated sweeps through the same coordinator.
func TestClusterMultiTraceTransfers(t *testing.T) {
	srcA, dataA := recordWorkload(t, "Huffman")
	srcB, dataB := recordWorkload(t, "LuFactor")
	s1, w1 := newTestWorker(t, nil)
	s2, w2 := newTestWorker(t, nil)
	coord := New(Options{
		Workers:      []string{s1.URL, s2.URL},
		ShardConfigs: 2,
		Sentinels:    -1,
		HedgeAfter:   -1,
	})
	cfgs := gridConfigs(6)
	grid := Grid{
		Traces: []GridTrace{
			{Name: "Huffman", Source: srcA, Data: dataA},
			{Name: "LuFactor", Source: srcB, Data: dataB},
		},
		Configs: cfgs,
		Opts:    jrpm.DefaultOptions(),
	}
	for round := 0; round < 2; round++ {
		res, err := coord.Sweep(context.Background(), grid)
		if err != nil {
			t.Fatal(err)
		}
		for ti, tr := range grid.Traces {
			want := canonical(t, localRows(t, tr.Source, tr.Data, cfgs))
			if got := canonical(t, res.Outcomes[ti]); !bytes.Equal(got, want) {
				t.Errorf("round %d trace %d: distributed rows differ from local", round, ti)
			}
		}
	}
	for i, w := range []*Worker{w1, w2} {
		for _, tr := range w.Snapshot().Traces {
			if tr.Pushes > 1 {
				t.Errorf("worker %d: trace %s pushed %d times, want <= 1", i, tr.Key[:12], tr.Pushes)
			}
		}
	}
}

// TestWorkerEndpoints exercises the worker HTTP surface directly:
// content-address verification, garbage rejection, presence stats, and
// trace-missing shard rejection.
func TestWorkerEndpoints(t *testing.T) {
	srv, _ := newTestWorker(t, nil)
	_, data := recordWorkload(t, "Huffman")
	key := service.TraceKeyOf(data)
	client := srv.Client()

	put := func(path string, body []byte) *http.Response {
		req, _ := http.NewRequest(http.MethodPut, srv.URL+path, bytes.NewReader(body))
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	if resp := put("/v1/traces/"+key, []byte("garbage")); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("mismatched content address: HTTP %d, want 400", resp.StatusCode)
	}
	if resp := put("/v1/traces/"+service.TraceKeyOf([]byte("garbage")), []byte("garbage")); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("non-trace bytes: HTTP %d, want 422", resp.StatusCode)
	}
	if resp := put("/v1/traces/"+key, data); resp.StatusCode != http.StatusNoContent {
		t.Errorf("valid push: HTTP %d, want 204", resp.StatusCode)
	}
	resp, err := client.Get(srv.URL + "/v1/traces/" + key + "?stat=1")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("stat after push: HTTP %d, want 204", resp.StatusCode)
	}

	// A shard against a key the worker does not hold must come back as
	// the typed trace_missing rejection the dispatcher re-pushes on.
	sr := ShardRequest{TraceKey: strings.Repeat("0", 64), Source: "func main() {}", Configs: gridConfigs(1)}
	body, _ := json.Marshal(sr)
	resp, err = client.Post(srv.URL+"/v1/shards", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing trace shard: HTTP %d, want 404", resp.StatusCode)
	}
	var ae struct {
		Code string `json:"code"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ae); err != nil || ae.Code != "trace_missing" {
		t.Errorf("missing trace shard: code=%q err=%v, want trace_missing", ae.Code, err)
	}
}
