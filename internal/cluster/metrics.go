package cluster

import (
	"sort"
	"sync"
	"time"
)

// Metrics accumulates one sweep's scheduling counters. All updates
// happen under the scheduler lock except latency observation, which has
// its own mutex so slow shards never serialize against dispatch.
type Metrics struct {
	mu sync.Mutex

	dispatched int64
	retried    int64
	hedged     int64
	stolen     int64
	failures   int64
	breaker    int64
	local      int64
	sentinels  int64
	pushes     int64

	latencies []time.Duration // completed shard round-trip times
	perWorker map[string]*workerCounters
}

type workerCounters struct {
	dispatched int64
	completed  int64
	failures   int64
	stolen     int64
	pushes     int64
	latencies  []time.Duration
}

func newMetrics() *Metrics {
	return &Metrics{perWorker: map[string]*workerCounters{}}
}

func (m *Metrics) worker(name string) *workerCounters {
	w := m.perWorker[name]
	if w == nil {
		w = &workerCounters{}
		m.perWorker[name] = w
	}
	return w
}

func (m *Metrics) onDispatch(worker string, stolen bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dispatched++
	w := m.worker(worker)
	w.dispatched++
	if stolen {
		m.stolen++
		w.stolen++
	}
}

func (m *Metrics) onComplete(worker string, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	w := m.worker(worker)
	w.completed++
	w.latencies = append(w.latencies, d)
	m.latencies = append(m.latencies, d)
}

func (m *Metrics) onFailure(worker string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.failures++
	m.worker(worker).failures++
}

func (m *Metrics) onRetry()        { m.mu.Lock(); m.retried++; m.mu.Unlock() }
func (m *Metrics) onHedge()        { m.mu.Lock(); m.hedged++; m.mu.Unlock() }
func (m *Metrics) onBreakerOpen()  { m.mu.Lock(); m.breaker++; m.mu.Unlock() }
func (m *Metrics) onLocalShard()   { m.mu.Lock(); m.local++; m.mu.Unlock() }
func (m *Metrics) onSentinel()     { m.mu.Lock(); m.sentinels++; m.mu.Unlock() }
func (m *Metrics) onPush(w string) { m.mu.Lock(); m.pushes++; m.worker(w).pushes++; m.mu.Unlock() }

// WorkerStats is the per-worker section of a metrics snapshot.
type WorkerStats struct {
	Worker     string  `json:"worker"`
	Dispatched int64   `json:"dispatched"`
	Completed  int64   `json:"completed"`
	Failures   int64   `json:"failures"`
	Stolen     int64   `json:"stolen"`
	TracePush  int64   `json:"trace_pushes"`
	P50Ms      float64 `json:"p50_ms"`
	P99Ms      float64 `json:"p99_ms"`
}

// Snapshot is the JSON-ready summary of one sweep's scheduling: shard
// dispatch/retry/hedge/steal counters, circuit-breaker trips, local
// fallbacks, sentinel checks, content-address pushes, and shard latency
// quantiles, overall and per worker.
type Snapshot struct {
	Dispatched     int64         `json:"dispatched"`
	Retried        int64         `json:"retried"`
	Hedged         int64         `json:"hedged"`
	Stolen         int64         `json:"stolen"`
	Failures       int64         `json:"failures"`
	BreakerOpens   int64         `json:"breaker_opens"`
	LocalShards    int64         `json:"local_shards"`
	SentinelChecks int64         `json:"sentinel_checks"`
	TracePushes    int64         `json:"trace_pushes"`
	ShardP50Ms     float64       `json:"shard_p50_ms"`
	ShardP99Ms     float64       `json:"shard_p99_ms"`
	Workers        []WorkerStats `json:"workers"`
}

// quantile returns the q-th latency quantile in milliseconds; ds is
// copied and sorted.
func quantile(ds []time.Duration, q float64) float64 {
	if len(ds) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(q * float64(len(s)-1))
	return float64(s[i].Microseconds()) / 1e3
}

// Snapshot copies the counters out. Worker rows are sorted by name.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		Dispatched:     m.dispatched,
		Retried:        m.retried,
		Hedged:         m.hedged,
		Stolen:         m.stolen,
		Failures:       m.failures,
		BreakerOpens:   m.breaker,
		LocalShards:    m.local,
		SentinelChecks: m.sentinels,
		TracePushes:    m.pushes,
		ShardP50Ms:     quantile(m.latencies, 0.50),
		ShardP99Ms:     quantile(m.latencies, 0.99),
	}
	names := make([]string, 0, len(m.perWorker))
	for n := range m.perWorker {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		w := m.perWorker[n]
		s.Workers = append(s.Workers, WorkerStats{
			Worker:     n,
			Dispatched: w.dispatched,
			Completed:  w.completed,
			Failures:   w.failures,
			Stolen:     w.stolen,
			TracePush:  w.pushes,
			P50Ms:      quantile(w.latencies, 0.50),
			P99Ms:      quantile(w.latencies, 0.99),
		})
	}
	return s
}
