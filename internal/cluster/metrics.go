package cluster

import (
	"sort"
	"sync"
	"time"

	"jrpm/internal/telemetry"
)

// Metrics accumulates one sweep's scheduling counters. The scalar
// counters are lock-free telemetry counters in a sweep-private registry
// (so a sweep can also be rendered as Prometheus text); latency samples
// and per-worker rows keep their own mutex so slow shards never
// serialize against dispatch.
type Metrics struct {
	reg *telemetry.Registry

	dispatched *telemetry.Counter
	retried    *telemetry.Counter
	hedged     *telemetry.Counter
	stolen     *telemetry.Counter
	failures   *telemetry.Counter
	breaker    *telemetry.Counter
	local      *telemetry.Counter
	sentinels  *telemetry.Counter
	pushes     *telemetry.Counter
	joins      *telemetry.Counter
	leaves     *telemetry.Counter
	replicated *telemetry.Counter
	rerepl     *telemetry.Counter
	replicaGa  *telemetry.Gauge

	mu        sync.Mutex
	latencies []time.Duration // completed shard round-trip times
	perWorker map[string]*workerCounters
}

type workerCounters struct {
	dispatched int64
	completed  int64
	failures   int64
	stolen     int64
	pushes     int64
	latencies  []time.Duration
}

func newMetrics() *Metrics {
	reg := telemetry.NewRegistry()
	return &Metrics{
		reg:        reg,
		dispatched: reg.Counter("jrpm_sweep_shards_dispatched_total", "Shard dispatch attempts (including retries and hedges)."),
		retried:    reg.Counter("jrpm_sweep_shards_retried_total", "Shards requeued after a failed attempt."),
		hedged:     reg.Counter("jrpm_sweep_shards_hedged_total", "Straggler shards re-dispatched to a second worker."),
		stolen:     reg.Counter("jrpm_sweep_shards_stolen_total", "Shards taken off another worker's queue."),
		failures:   reg.Counter("jrpm_sweep_shard_failures_total", "Failed shard attempts."),
		breaker:    reg.Counter("jrpm_sweep_breaker_opens_total", "Circuit-breaker trips."),
		local:      reg.Counter("jrpm_sweep_local_shards_total", "Shards executed in-process as graceful degradation."),
		sentinels:  reg.Counter("jrpm_sweep_sentinel_checks_total", "Cross-worker determinism comparisons performed."),
		pushes:     reg.Counter("jrpm_sweep_trace_pushes_total", "Recordings shipped to workers (content-address misses)."),
		joins:      reg.Counter("jrpm_sweep_member_joins_total", "Workers admitted mid-sweep from the fleet membership."),
		leaves:     reg.Counter("jrpm_sweep_member_leaves_total", "Workers retired mid-sweep after leaving the fleet."),
		replicated: reg.Counter("jrpm_sweep_replica_pulls_total", "Worker-to-worker replica transfers instructed by the scheduler."),
		rerepl:     reg.Counter("jrpm_sweep_rereplications_total", "Replica transfers that restored a replica lost to membership churn."),
		replicaGa:  reg.Gauge("jrpm_sweep_trace_replicas", "Recording replicas currently placed across the fleet (all traces)."),
		perWorker:  map[string]*workerCounters{},
	}
}

// Registry exposes the sweep's counter registry (Prometheus-renderable
// via WriteProm).
func (m *Metrics) Registry() *telemetry.Registry { return m.reg }

func (m *Metrics) worker(name string) *workerCounters {
	w := m.perWorker[name]
	if w == nil {
		w = &workerCounters{}
		m.perWorker[name] = w
	}
	return w
}

func (m *Metrics) onDispatch(worker string, stolen bool) {
	m.dispatched.Inc()
	if stolen {
		m.stolen.Inc()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	w := m.worker(worker)
	w.dispatched++
	if stolen {
		w.stolen++
	}
}

func (m *Metrics) onComplete(worker string, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	w := m.worker(worker)
	w.completed++
	w.latencies = append(w.latencies, d)
	m.latencies = append(m.latencies, d)
}

func (m *Metrics) onFailure(worker string) {
	m.failures.Inc()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.worker(worker).failures++
}

func (m *Metrics) onRetry()       { m.retried.Inc() }
func (m *Metrics) onHedge()       { m.hedged.Inc() }
func (m *Metrics) onBreakerOpen() { m.breaker.Inc() }
func (m *Metrics) onLocalShard()  { m.local.Inc() }
func (m *Metrics) onSentinel()    { m.sentinels.Inc() }

func (m *Metrics) onMemberJoin()  { m.joins.Inc() }
func (m *Metrics) onMemberLeave() { m.leaves.Inc() }

func (m *Metrics) onReplicaPull(rereplication bool) {
	m.replicated.Inc()
	if rereplication {
		m.rerepl.Inc()
	}
}

// setReplicaGauge tracks the fleet-wide replica population (the sum of
// per-trace holder counts) as placement and churn move it.
func (m *Metrics) setReplicaGauge(n int64) { m.replicaGa.Set(n) }

func (m *Metrics) onPush(w string) {
	m.pushes.Inc()
	m.mu.Lock()
	m.worker(w).pushes++
	m.mu.Unlock()
}

// WorkerStats is the per-worker section of a metrics snapshot.
type WorkerStats struct {
	Worker     string  `json:"worker"`
	Dispatched int64   `json:"dispatched"`
	Completed  int64   `json:"completed"`
	Failures   int64   `json:"failures"`
	Stolen     int64   `json:"stolen"`
	TracePush  int64   `json:"trace_pushes"`
	P50Ms      float64 `json:"p50_ms"`
	P99Ms      float64 `json:"p99_ms"`
}

// Snapshot is the JSON-ready summary of one sweep's scheduling: shard
// dispatch/retry/hedge/steal counters, circuit-breaker trips, local
// fallbacks, sentinel checks, content-address pushes, and shard latency
// quantiles, overall and per worker.
type Snapshot struct {
	Dispatched     int64         `json:"dispatched"`
	Retried        int64         `json:"retried"`
	Hedged         int64         `json:"hedged"`
	Stolen         int64         `json:"stolen"`
	Failures       int64         `json:"failures"`
	BreakerOpens   int64         `json:"breaker_opens"`
	LocalShards    int64         `json:"local_shards"`
	SentinelChecks int64         `json:"sentinel_checks"`
	TracePushes    int64         `json:"trace_pushes"`
	MemberJoins    int64         `json:"member_joins,omitempty"`
	MemberLeaves   int64         `json:"member_leaves,omitempty"`
	ReplicaPulls   int64         `json:"replica_pulls,omitempty"`
	ReReplications int64         `json:"rereplications,omitempty"`
	ShardP50Ms     float64       `json:"shard_p50_ms"`
	ShardP99Ms     float64       `json:"shard_p99_ms"`
	Workers        []WorkerStats `json:"workers"`
	// TraceReplicas maps each grid trace's content address to how many
	// fleet members held it when the sweep finished.
	TraceReplicas map[string]int `json:"trace_replicas,omitempty"`
}

// quantile returns the q-th latency quantile in milliseconds; ds is
// copied and sorted.
func quantile(ds []time.Duration, q float64) float64 {
	if len(ds) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(q * float64(len(s)-1))
	return float64(s[i].Microseconds()) / 1e3
}

// Snapshot copies the counters out. Worker rows are sorted by name.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		Dispatched:     m.dispatched.Load(),
		Retried:        m.retried.Load(),
		Hedged:         m.hedged.Load(),
		Stolen:         m.stolen.Load(),
		Failures:       m.failures.Load(),
		BreakerOpens:   m.breaker.Load(),
		LocalShards:    m.local.Load(),
		SentinelChecks: m.sentinels.Load(),
		TracePushes:    m.pushes.Load(),
		MemberJoins:    m.joins.Load(),
		MemberLeaves:   m.leaves.Load(),
		ReplicaPulls:   m.replicated.Load(),
		ReReplications: m.rerepl.Load(),
		ShardP50Ms:     quantile(m.latencies, 0.50),
		ShardP99Ms:     quantile(m.latencies, 0.99),
	}
	names := make([]string, 0, len(m.perWorker))
	for n := range m.perWorker {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		w := m.perWorker[n]
		s.Workers = append(s.Workers, WorkerStats{
			Worker:     n,
			Dispatched: w.dispatched,
			Completed:  w.completed,
			Failures:   w.failures,
			Stolen:     w.stolen,
			TracePush:  w.pushes,
			P50Ms:      quantile(w.latencies, 0.50),
			P99Ms:      quantile(w.latencies, 0.99),
		})
	}
	return s
}
