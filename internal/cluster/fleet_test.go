// Fleet-dynamics acceptance: byte-identity must survive a registry-
// backed worker set that churns mid-sweep — workers dying (shards
// stolen back) and joining (shards picked up) — and the replicated
// trace store must keep each recording on N members with worker-to-
// worker transfer only.
package cluster

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"jrpm"
	"jrpm/internal/fleet"
	"jrpm/internal/workloads"
)

// newTestRegistry serves a fleet registry over HTTP, as jrpmd does.
func newTestRegistry(t testing.TB, ttl time.Duration) (*httptest.Server, *fleet.Registry) {
	t.Helper()
	reg := fleet.NewRegistry(fleet.RegistryOptions{TTL: ttl})
	mux := http.NewServeMux()
	reg.Register(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, reg
}

func registerMember(t testing.TB, regURL, id, addr string) {
	t.Helper()
	body := fmt.Sprintf(`{"id":%q,"addr":%q}`, id, addr)
	resp, err := http.Post(regURL+"/v1/fleet/register", "application/json", strings.NewReader(body))
	if err != nil {
		t.Errorf("register %s: %v", id, err)
		return
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("register %s: HTTP %d", id, resp.StatusCode)
	}
}

func deregisterMember(t testing.TB, regURL, id string) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodDelete, regURL+"/v1/fleet/members/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Errorf("deregister %s: %v", id, err)
		return
	}
	resp.Body.Close()
}

// TestFleetChurnEquivalence: for every workload, a sweep over a
// registry-backed fleet — with one worker dying mid-sweep (its process
// aborting shard requests and its registration dropped) and a fresh
// worker joining mid-sweep — merges into exactly the canonical bytes of
// a local sweep, and the streamed rows are those same bytes: every
// (trace, config) cell delivered exactly once, no cell lost to the
// churn.
func TestFleetChurnEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("records and replays every workload")
	}
	for _, w := range workloads.All() {
		t.Run(w.Meta.Name, func(t *testing.T) {
			src, data := recordWorkload(t, w.Meta.Name)
			cfgs := gridConfigs(8)
			want := localRows(t, src, data, cfgs)

			regSrv, _ := newTestRegistry(t, 5*time.Second)
			srvA, _ := newTestWorker(t, killAfter(1))
			srvB, _ := newTestWorker(t, slowShards(10*time.Millisecond))
			srvC, _ := newTestWorker(t, nil) // created idle; joins mid-sweep
			registerMember(t, regSrv.URL, "worker-a", srvA.URL)
			registerMember(t, regSrv.URL, "worker-b", srvB.URL)

			coord := New(Options{
				Membership:         fleet.NewRegistryMembership(regSrv.URL),
				MembershipInterval: 5 * time.Millisecond,
				ShardConfigs:       2,
				MaxAttempts:        8,
				RetryBase:          5 * time.Millisecond,
				BreakerThreshold:   2,
				BreakerCooldown:    100 * time.Millisecond,
				ShardTimeout:       30 * time.Second,
			})

			var mu sync.Mutex
			var churn sync.Once
			seen := map[[2]int]int{}
			streamed := map[[2]int]OutcomeRow{}
			res, err := coord.SweepStream(context.Background(), Grid{
				Traces:  []GridTrace{{Name: w.Meta.Name, Source: src, Data: data}},
				Configs: cfgs,
				Opts:    jrpm.DefaultOptions(),
			}, func(ti, ci int, row OutcomeRow) {
				mu.Lock()
				seen[[2]int{ti, ci}]++
				streamed[[2]int{ti, ci}] = row
				mu.Unlock()
				// First completed cell triggers the churn: worker A dies
				// (deregistered, and killAfter aborts its next shard), worker
				// C joins the live fleet.
				churn.Do(func() {
					go func() {
						deregisterMember(t, regSrv.URL, "worker-a")
						registerMember(t, regSrv.URL, "worker-c", srvC.URL)
					}()
				})
			})
			if err != nil {
				t.Fatal(err)
			}

			got := canonical(t, res.Outcomes[0])
			if !bytes.Equal(got, canonical(t, want)) {
				t.Fatalf("churned fleet sweep diverged from local sweep")
			}
			for ci := range cfgs {
				if n := seen[[2]int{0, ci}]; n != 1 {
					t.Errorf("config %d streamed %d times, want exactly once", ci, n)
				}
				if cb, mb := canonical(t, []OutcomeRow{streamed[[2]int{0, ci}]}), canonical(t, []OutcomeRow{res.Outcomes[0][ci]}); !bytes.Equal(cb, mb) {
					t.Errorf("config %d: streamed row differs from merged row", ci)
				}
			}
			if res.Metrics.MemberLeaves < 1 {
				t.Errorf("member leaves = %d, want >= 1 (worker A died mid-sweep)", res.Metrics.MemberLeaves)
			}
			if res.Metrics.MemberJoins < 1 {
				t.Errorf("member joins = %d, want >= 1 (worker C joined mid-sweep)", res.Metrics.MemberJoins)
			}
		})
	}
}

// TestFleetReReplication: with -replicas 2 over three workers and
// stealing disabled (so execution alone cannot spread copies), the
// replicator must place a second copy of every recording worker-to-
// worker, and losing a holder mid-sweep must re-converge each
// recording back to two replicas.
func TestFleetReReplication(t *testing.T) {
	regSrv, _ := newTestRegistry(t, 5*time.Second)
	ids := []string{"worker-a", "worker-b", "worker-c"}
	for _, id := range ids {
		srv, _ := newTestWorker(t, slowShards(10*time.Millisecond))
		registerMember(t, regSrv.URL, id, srv.URL)
	}

	names := []string{"Huffman", "BitOps", "LuFactor"}
	grid := Grid{Configs: gridConfigs(16), Opts: jrpm.DefaultOptions()}
	for _, n := range names {
		src, data := recordWorkload(t, n)
		grid.Traces = append(grid.Traces, GridTrace{Name: n, Source: src, Data: data})
	}
	var want [][]OutcomeRow
	for _, gt := range grid.Traces {
		want = append(want, localRows(t, gt.Source, gt.Data, grid.Configs))
	}

	coord := New(Options{
		Membership:         fleet.NewRegistryMembership(regSrv.URL),
		MembershipInterval: 5 * time.Millisecond,
		Replicas:           2,
		DisableStealing:    true,
		ShardConfigs:       2,
		MaxAttempts:        8,
		RetryBase:          5 * time.Millisecond,
		Sentinels:          -1,
		HedgeAfter:         -1,
	})

	var die sync.Once
	res, err := coord.SweepStream(context.Background(), grid, func(ti, ci int, _ OutcomeRow) {
		// Losing worker A mid-sweep drops every replica it held.
		die.Do(func() { go deregisterMember(t, regSrv.URL, "worker-a") })
	})
	if err != nil {
		t.Fatal(err)
	}
	for ti := range grid.Traces {
		if !bytes.Equal(canonical(t, res.Outcomes[ti]), canonical(t, want[ti])) {
			t.Errorf("trace %d diverged from local sweep", ti)
		}
	}
	if res.Metrics.ReplicaPulls < 1 {
		t.Errorf("replica pulls = %d, want >= 1 (stealing disabled, second copies must move worker-to-worker)",
			res.Metrics.ReplicaPulls)
	}
	if res.Metrics.MemberLeaves != 1 {
		t.Errorf("member leaves = %d, want 1", res.Metrics.MemberLeaves)
	}
	for key, n := range res.Metrics.TraceReplicas {
		if n < 2 {
			t.Errorf("trace %s finished with %d replicas, want 2 (re-replication after holder loss)", key[:12], n)
		}
	}
}

// BenchmarkFleetSweep measures replicated sweeps and asserts the
// coordinator's push bandwidth is flat in the replica count: each
// recording leaves the coordinator at most once — every further copy
// moves worker-to-worker.
func BenchmarkFleetSweep(b *testing.B) {
	grid := Grid{Configs: benchConfigs(16), Opts: jrpm.DefaultOptions()}
	for _, n := range []string{"Huffman", "BitOps"} {
		src, data := recordWorkload(b, n)
		grid.Traces = append(grid.Traces, GridTrace{Name: n, Source: src, Data: data})
	}
	for _, replicas := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("replicas=%d", replicas), func(b *testing.B) {
			addrs := make([]string, 3)
			workers := make([]*Worker, 3)
			for i := range addrs {
				srv, w := newTestWorker(b, nil)
				addrs[i], workers[i] = srv.URL, w
			}
			coord := New(Options{
				Workers:            addrs,
				Replicas:           replicas,
				MembershipInterval: 5 * time.Millisecond,
				ShardConfigs:       4,
				Sentinels:          -1,
				HedgeAfter:         -1,
			})
			var pushes int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := coord.Sweep(context.Background(), grid)
				if err != nil {
					b.Fatal(err)
				}
				pushes += res.Metrics.TracePushes
			}
			b.StopTimer()
			// Across every iteration the coordinator ships each recording at
			// most once (the residency memo persists between sweeps).
			if pushes > int64(len(grid.Traces)) {
				b.Errorf("coordinator pushed %d times for %d traces at replicas=%d, want at most one push per trace",
					pushes, len(grid.Traces), replicas)
			}
			perKey := map[string]int64{}
			var peerFetches int64
			for _, w := range workers {
				snap := w.Snapshot()
				for _, tt := range snap.Traces {
					perKey[tt.Key] += tt.Pushes
				}
				peerFetches += snap.TracePeerFetches
			}
			for key, n := range perKey {
				if n > 1 {
					b.Errorf("trace %s received %d coordinator pushes fleet-wide, want at most 1 (replicas fetch peer-to-peer)",
						key[:12], n)
				}
			}
			b.ReportMetric(float64(peerFetches)/float64(b.N), "peer-fetches/op")
		})
	}
}
