package cluster

import (
	"encoding/json"
	"sort"

	"jrpm/internal/core"
	"jrpm/internal/profile"
	"jrpm/internal/trace"

	"jrpm/internal/hydra"
)

// OutcomeRow is the canonical, wire-safe form of one trace.SweepOutcome:
// everything the analysis produced — the per-loop tracer table, the
// dynamic nesting edges, the loop tree with estimates and selection
// state — flattened into sorted slices so that encoding is deterministic.
// Two sweeps of the same recording under the same configuration produce
// byte-identical Canonical encodings, which is what the coordinator's
// sentinel determinism check and TestClusterEquivalence compare.
//
// All numeric fields survive a JSON round trip exactly: integers are
// decoded digit-for-digit and Go's float64 encoding is the shortest
// representation that parses back to the identical bits.
type OutcomeRow struct {
	Cfg hydra.Config `json:"cfg"`
	// Err is the replay error, if the configuration failed; all other
	// fields are zero in that case.
	Err string `json:"err,omitempty"`

	CleanCycles     int64   `json:"clean_cycles"`
	TracedCycles    int64   `json:"traced_cycles"`
	Scale           float64 `json:"scale"`
	PredictedCycles float64 `json:"predicted_cycles"`

	// Loops is the tracer's per-loop statistics table, sorted by loop id.
	Loops []LoopRow `json:"loops,omitempty"`
	// Edges is the observed dynamic nesting (child, parent, entries),
	// sorted by (child, parent); parent -1 is top level.
	Edges []EdgeRow `json:"edges,omitempty"`
	// Nodes is the analyzed loop tree, sorted by loop id.
	Nodes []NodeRow `json:"nodes,omitempty"`
	// Selected is the chosen STL set in selection order (descending
	// coverage).
	Selected []int `json:"selected,omitempty"`
}

// LoopRow is one core.LoopStats entry of the tracer table.
type LoopRow struct {
	Loop           int      `json:"loop"`
	Cycles         int64    `json:"cycles"`
	Threads        int64    `json:"threads"`
	Entries        int64    `json:"entries"`
	ArcCount       [2]int64 `json:"arc_count"`
	ArcLenSum      [2]int64 `json:"arc_len_sum"`
	Overflows      int64    `json:"overflows"`
	MaxLdLines     int      `json:"max_ld_lines"`
	MaxStLines     int      `json:"max_st_lines"`
	SkippedEntries int64    `json:"skipped_entries"`
	// PCArcs carries the extended tracer's per-load-PC bins, sorted by PC.
	PCArcs []PCArcRow `json:"pc_arcs,omitempty"`
}

// PCArcRow is one per-PC arc record of the extended tracer.
type PCArcRow struct {
	PC     int   `json:"pc"`
	Count  int64 `json:"count"`
	LenSum int64 `json:"len_sum"`
	MinLen int64 `json:"min_len"`
}

// EdgeRow is one dynamic nesting edge.
type EdgeRow struct {
	Child  int   `json:"child"`
	Parent int   `json:"parent"`
	Count  int64 `json:"count"`
}

// NodeRow is one loop-tree node of the analysis.
type NodeRow struct {
	Loop     int              `json:"loop"`
	Parent   int              `json:"parent"` // -1 for roots
	Height   int              `json:"height"`
	Depth    int              `json:"depth"`
	Selected bool             `json:"selected"`
	Est      profile.Estimate `json:"est"`
	TLSTime  float64          `json:"tls_time"`
	BestTime float64          `json:"best_time"`
}

// EncodeOutcome flattens one sweep outcome into its canonical row.
func EncodeOutcome(o trace.SweepOutcome) OutcomeRow {
	row := OutcomeRow{Cfg: o.Job.Cfg}
	if o.Err != nil {
		row.Err = o.Err.Error()
		return row
	}

	stats := o.Tracer.Results()
	ids := make([]int, 0, len(stats))
	for id := range stats {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	row.Loops = make([]LoopRow, 0, len(ids))
	for _, id := range ids {
		s := stats[id]
		lr := LoopRow{
			Loop:           s.Loop,
			Cycles:         s.Cycles,
			Threads:        s.Threads,
			Entries:        s.Entries,
			ArcCount:       s.ArcCount,
			ArcLenSum:      s.ArcLenSum,
			Overflows:      s.Overflows,
			MaxLdLines:     s.MaxLdLines,
			MaxStLines:     s.MaxStLines,
			SkippedEntries: s.SkippedEntries,
		}
		if len(s.PCArcs) > 0 {
			pcs := make([]int, 0, len(s.PCArcs))
			for pc := range s.PCArcs {
				pcs = append(pcs, pc)
			}
			sort.Ints(pcs)
			for _, pc := range pcs {
				a := s.PCArcs[pc]
				lr.PCArcs = append(lr.PCArcs, PCArcRow{PC: pc, Count: a.Count, LenSum: a.LenSum, MinLen: a.MinLen})
			}
		}
		row.Loops = append(row.Loops, lr)
	}

	edges := o.Tracer.ParentEdges()
	children := make([]int, 0, len(edges))
	for c := range edges {
		children = append(children, c)
	}
	sort.Ints(children)
	for _, c := range children {
		parents := make([]int, 0, len(edges[c]))
		for p := range edges[c] {
			parents = append(parents, p)
		}
		sort.Ints(parents)
		for _, p := range parents {
			row.Edges = append(row.Edges, EdgeRow{Child: c, Parent: p, Count: edges[c][p]})
		}
	}

	an := o.Analysis
	row.CleanCycles = an.CleanCycles
	row.TracedCycles = an.TotalCycles
	row.Scale = an.Scale
	row.PredictedCycles = an.PredictedCycles

	nids := make([]int, 0, len(an.Nodes))
	for id := range an.Nodes {
		nids = append(nids, id)
	}
	sort.Ints(nids)
	row.Nodes = make([]NodeRow, 0, len(nids))
	for _, id := range nids {
		n := an.Nodes[id]
		nr := NodeRow{
			Loop:     n.Loop,
			Parent:   -1,
			Height:   n.Height,
			Depth:    n.Depth,
			Selected: n.Selected,
			Est:      n.Est,
			TLSTime:  n.TLSTime,
			BestTime: n.BestTime,
		}
		if n.Parent != nil {
			nr.Parent = n.Parent.Loop
		}
		row.Nodes = append(row.Nodes, nr)
	}
	row.Selected = an.SelectedLoopIDs()
	return row
}

// EncodeOutcomes maps EncodeOutcome over a sweep's outcome list.
func EncodeOutcomes(outs []trace.SweepOutcome) []OutcomeRow {
	rows := make([]OutcomeRow, len(outs))
	for i, o := range outs {
		rows[i] = EncodeOutcome(o)
	}
	return rows
}

// Canonical serializes outcome rows into the byte form compared by the
// sentinel determinism check and the cluster equivalence tests.
func Canonical(rows []OutcomeRow) ([]byte, error) {
	return json.Marshal(rows)
}

// PredictedSpeedup mirrors profile.Analysis.PredictedSpeedup for a
// canonical row.
func (r *OutcomeRow) PredictedSpeedup() float64 {
	if r.PredictedCycles == 0 {
		return 1
	}
	return float64(r.CleanCycles) / r.PredictedCycles
}

// LoopTable reconstructs the tracer's per-loop statistics table (without
// the extended PC bins' map identity; values are exact copies).
func (r *OutcomeRow) LoopTable() map[int]*core.LoopStats {
	out := make(map[int]*core.LoopStats, len(r.Loops))
	for _, lr := range r.Loops {
		s := &core.LoopStats{
			Loop:           lr.Loop,
			Cycles:         lr.Cycles,
			Threads:        lr.Threads,
			Entries:        lr.Entries,
			ArcCount:       lr.ArcCount,
			ArcLenSum:      lr.ArcLenSum,
			Overflows:      lr.Overflows,
			MaxLdLines:     lr.MaxLdLines,
			MaxStLines:     lr.MaxStLines,
			SkippedEntries: lr.SkippedEntries,
		}
		if len(lr.PCArcs) > 0 {
			s.PCArcs = make(map[int]*core.PCArcStats, len(lr.PCArcs))
			for _, a := range lr.PCArcs {
				s.PCArcs[a.PC] = &core.PCArcStats{Count: a.Count, LenSum: a.LenSum, MinLen: a.MinLen}
			}
		}
		out[lr.Loop] = s
	}
	return out
}

// SelectedEsts returns the Equation 1 estimates of the selected loops, in
// selection order.
func (r *OutcomeRow) SelectedEsts() []profile.Estimate {
	byLoop := make(map[int]profile.Estimate, len(r.Nodes))
	for _, n := range r.Nodes {
		byLoop[n.Loop] = n.Est
	}
	out := make([]profile.Estimate, 0, len(r.Selected))
	for _, id := range r.Selected {
		out = append(out, byLoop[id])
	}
	return out
}
