package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"jrpm"
	"jrpm/internal/service"
	"jrpm/internal/telemetry"
)

// newTestWorkerPool is newTestWorker but hands back the underlying pool
// so a test can drain it.
func newTestWorkerPool(t *testing.T) (*httptest.Server, *service.Pool) {
	t.Helper()
	pool := service.NewPool(service.Config{Workers: 2})
	t.Cleanup(pool.Stop)
	w := NewWorker(pool, 0, 2)
	mux := http.NewServeMux()
	w.Register(mux)
	service.NewServer(pool).Register(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, pool
}

// tracedWorker assembles the full jrpmd -worker observability stack: a
// pool with a tracer, the service API and cluster worker routes on one
// mux (so GET /v1/traces/spans wins over GET /v1/traces/{hash}), all
// under telemetry.Middleware.
func tracedWorker(t *testing.T) (addr string, col *telemetry.Collector) {
	t.Helper()
	pool := service.NewPool(service.Config{Workers: 2})
	t.Cleanup(pool.Stop)
	col = telemetry.NewCollector(512)
	tr := telemetry.NewTracer(col)
	pool.SetTracer(tr)
	api := service.NewServer(pool)
	api.Tracer = tr
	w := NewWorker(pool, 0, 2)
	mux := http.NewServeMux()
	w.Register(mux)
	api.Register(mux)
	srv := httptest.NewServer(telemetry.Middleware(tr, mux))
	t.Cleanup(srv.Close)
	return srv.Listener.Addr().String(), col
}

// TestClusterStitchedTrace is the distributed-tracing acceptance check:
// a two-worker sweep run under one client span must yield spans on the
// coordinator AND on both workers that all carry the same trace ID —
// scheduling, shard dispatch, trace push, and worker-side replay
// stitched into a single trace.
func TestClusterStitchedTrace(t *testing.T) {
	addr1, col1 := tracedWorker(t)
	addr2, col2 := tracedWorker(t)

	src, data := recordWorkload(t, "Huffman")
	cfgs := gridConfigs(6)

	coordCol := telemetry.NewCollector(512)
	ctx := telemetry.WithTracer(context.Background(), telemetry.NewTracer(coordCol))
	ctx, root := telemetry.StartSpan(ctx, "test.sweep")

	c := New(Options{
		Workers:      []string{addr1, addr2},
		ShardConfigs: 2,
		Sentinels:    1,
	})
	res, err := c.Sweep(ctx, Grid{
		Traces:  []GridTrace{{Name: "Huffman", Source: src, Data: data}},
		Configs: cfgs,
		Opts:    jrpm.DefaultOptions(),
	})
	root.End()
	if err != nil {
		t.Fatal(err)
	}
	want := canonical(t, localRows(t, src, data, cfgs))
	got := canonical(t, res.Outcomes[0])
	if string(want) != string(got) {
		t.Fatal("distributed sweep diverged from local sweep")
	}

	trace := root.TraceID()
	coordSpans := coordCol.Snapshot(trace)
	names := map[string]int{}
	for _, sd := range coordSpans {
		names[sd.Name]++
	}
	for _, name := range []string{"cluster.sweep", "shard.dispatch", "trace.push", "sweep.merge"} {
		if names[name] == 0 {
			t.Errorf("coordinator trace missing %q span: %v", name, names)
		}
	}

	// Every worker that executed shards must hold server spans joined to
	// the SAME trace as the client root span, delivered over traceparent.
	workerNames := map[string]int{}
	stitched := 0
	for i, col := range []*telemetry.Collector{col1, col2} {
		spans := col.Snapshot(trace)
		if len(spans) == 0 {
			t.Errorf("worker %d collected no spans for trace %s", i, trace)
		}
		stitched += len(spans)
		for _, sd := range spans {
			if sd.TraceID != trace {
				t.Fatalf("worker %d span %q in trace %s, want %s", i, sd.Name, sd.TraceID, trace)
			}
			workerNames[sd.Name]++
		}
	}
	if workerNames["shard.replay"] == 0 {
		t.Errorf("no worker-side shard.replay spans: %v", workerNames)
	}
	if workerNames["http POST /v1/shards"] == 0 {
		t.Errorf("no worker-side HTTP server spans: %v", workerNames)
	}
	t.Logf("stitched %d coordinator + %d worker spans under one trace", len(coordSpans), stitched)

	// The spans must also be reachable over HTTP — the literal
	// /v1/traces/spans route has to win over the worker's
	// /v1/traces/{hash} wildcard (this is what jrpm sweep -trace-out
	// fetches to stitch the trace file).
	resp, err := http.Get("http://" + addr1 + "/v1/traces/spans?trace_id=" + trace)
	if err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Spans []telemetry.SpanData `json:"spans"`
	}
	derr := json.NewDecoder(resp.Body).Decode(&dump)
	resp.Body.Close()
	if derr != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/traces/spans = HTTP %d, decode err %v", resp.StatusCode, derr)
	}
	if len(dump.Spans) == 0 {
		t.Error("HTTP span fetch returned no spans (route shadowed by /v1/traces/{hash}?)")
	}
}

// TestClusterReadyzPreflight: a draining worker answers /v1/readyz with
// 503 and must be excluded by the preflight, with the sweep proceeding
// on the remaining fleet.
func TestClusterReadyzPreflight(t *testing.T) {
	srv1, _ := newTestWorker(t, nil)
	srv2, w2pool := newTestWorkerPool(t)

	src, data := recordWorkload(t, "BitOps")
	cfgs := gridConfigs(4)

	// Drain worker 2: its pool stops, so /v1/readyz flips to 503 while
	// /v1/version keeps answering.
	w2pool.Stop()

	var buf strings.Builder
	c := New(Options{
		Workers:      []string{srv1.Listener.Addr().String(), srv2.Listener.Addr().String()},
		ShardConfigs: 2,
		Sentinels:    -1,
		Logger:       telemetry.NewLogger(&buf, telemetry.LevelDebug),
	})
	res, err := c.Sweep(context.Background(), Grid{
		Traces:  []GridTrace{{Name: "BitOps", Source: src, Data: data}},
		Configs: cfgs,
		Opts:    jrpm.DefaultOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, ws := range res.Metrics.Workers {
		if ws.Worker == srv2.Listener.Addr().String() && ws.Dispatched > 0 {
			t.Errorf("draining worker received %d dispatches", ws.Dispatched)
		}
	}
	if !strings.Contains(buf.String(), "draining") {
		t.Errorf("exclusion not logged: %q", buf.String())
	}
	want := canonical(t, localRows(t, src, data, cfgs))
	if string(want) != string(canonical(t, res.Outcomes[0])) {
		t.Fatal("sweep on reduced fleet diverged from local sweep")
	}
}

// TestClusterMetricsProm: the sweep's counter registry and a worker's
// RegisterProm families render as valid Prometheus text.
func TestClusterMetricsProm(t *testing.T) {
	m := newMetrics()
	m.onDispatch("w1", false)
	m.onDispatch("w2", true)
	m.onRetry()
	m.onPush("w1")
	var buf strings.Builder
	if err := m.Registry().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if err := telemetry.ValidateProm(text); err != nil {
		t.Fatalf("sweep registry does not parse: %v\n%s", err, text)
	}
	for _, family := range []string{
		"jrpm_sweep_shards_dispatched_total 2",
		"jrpm_sweep_shards_stolen_total 1",
		"jrpm_sweep_shards_retried_total 1",
		"jrpm_sweep_trace_pushes_total 1",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("sweep prom missing %q:\n%s", family, text)
		}
	}

	_, w := newTestWorker(t, nil)
	reg := telemetry.NewRegistry()
	w.RegisterProm(reg)
	buf.Reset()
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	text = buf.String()
	if err := telemetry.ValidateProm(text); err != nil {
		t.Fatalf("worker registry does not parse: %v\n%s", err, text)
	}
	for _, family := range []string{
		"jrpmd_cluster_shards_executed_total",
		"jrpmd_cluster_configs_swept_total",
		"jrpmd_cluster_trace_pulls_total",
		"jrpmd_cluster_trace_pushes_total",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("worker prom missing %q", family)
		}
	}
}
