package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"jrpm"
	"jrpm/internal/service"
	"jrpm/internal/telemetry"
	"jrpm/internal/trace"
)

// maxTraceBody bounds PUT /v1/traces uploads and POST /v1/shards bodies.
const maxTraceBody = 512 << 20

// Worker serves the cluster's worker-side endpoints on top of a service
// pool, reusing its content-addressed caches:
//
//	POST /v1/shards              replay a cached recording under N configs
//	GET  /v1/traces/{hash}       fetch cached trace bytes (?stat=1: presence only)
//	PUT  /v1/traces/{hash}       store trace bytes under their content address
//	POST /v1/traces/{hash}/pull  fetch the recording from a peer replica holder
//
// Shard execution is bounded by a semaphore independent of the pool's
// job queue, so a busy profiling daemon still answers shard traffic
// predictably (and vice versa). Every trace transfer is counted per
// content address; BenchmarkClusterSweep asserts each recording reaches
// a worker at most once.
type Worker struct {
	pool *service.Pool
	sem  chan struct{}
	// replayWorkers bounds intra-shard replay parallelism (trace.Sweep's
	// worker count); <= 0 means GOMAXPROCS.
	replayWorkers int
	// MaxTraceBytes caps PUT /v1/traces uploads and peer pulls; <= 0
	// means the 512 MiB default. Set before Register.
	MaxTraceBytes int64

	hc *http.Client // peer fetches

	mu        sync.Mutex
	shards    int64
	configs   int64
	pulls     map[string]int64 // trace key -> GET (bytes served) count
	pushes    map[string]int64 // trace key -> PUT (bytes received) count
	peerFetch map[string]int64 // trace key -> recordings fetched from peers
	rejected  int64
	shardErrs int64
	fetching  map[string]chan struct{} // in-flight peer fetches, by key
}

// NewWorker wraps a pool. maxConcurrent bounds simultaneous shard
// executions (<= 0 means GOMAXPROCS); replayWorkers bounds each shard's
// internal replay fan-out (<= 0 means GOMAXPROCS).
func NewWorker(pool *service.Pool, maxConcurrent, replayWorkers int) *Worker {
	if maxConcurrent <= 0 {
		maxConcurrent = runtime.GOMAXPROCS(0)
	}
	return &Worker{
		pool:          pool,
		sem:           make(chan struct{}, maxConcurrent),
		replayWorkers: replayWorkers,
		hc:            &http.Client{Timeout: 60 * time.Second},
		pulls:         map[string]int64{},
		pushes:        map[string]int64{},
		peerFetch:     map[string]int64{},
		fetching:      map[string]chan struct{}{},
	}
}

func (w *Worker) maxBytes() int64 {
	if w.MaxTraceBytes > 0 {
		return w.MaxTraceBytes
	}
	return maxTraceBody
}

// Handler returns the worker routes.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	w.Register(mux)
	return mux
}

// Register mounts the worker routes on an existing mux (jrpmd mounts
// them next to the service API).
func (w *Worker) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/shards", w.runShard)
	mux.HandleFunc("GET /v1/traces/{hash}", w.getTrace)
	mux.HandleFunc("PUT /v1/traces/{hash}", w.putTrace)
	mux.HandleFunc("POST /v1/traces/{hash}/pull", w.pullTrace)
}

func (w *Worker) getTrace(rw http.ResponseWriter, r *http.Request) {
	key := r.PathValue("hash")
	art, ok := w.pool.Traces().Get(key)
	if !ok {
		writeJSON(rw, http.StatusNotFound, map[string]string{"error": "no cached trace", "code": "trace_missing"})
		return
	}
	if r.URL.Query().Get("stat") != "" {
		rw.WriteHeader(http.StatusNoContent)
		return
	}
	w.mu.Lock()
	w.pulls[key]++
	w.mu.Unlock()
	// Stream with an explicit length so peers (and the coordinator) can
	// size buffers and enforce their own caps without buffering twice.
	rw.Header().Set("Content-Type", "application/octet-stream")
	rw.Header().Set("Content-Length", fmt.Sprint(len(art.Data)))
	io.Copy(rw, bytes.NewReader(art.Data)) //nolint:errcheck // client gone; nothing to do
}

func (w *Worker) putTrace(rw http.ResponseWriter, r *http.Request) {
	key := r.PathValue("hash")
	// Reject oversized uploads before reading a byte when the sender
	// declares a length; MaxBytesReader still guards chunked senders.
	if r.ContentLength > w.maxBytes() {
		writeJSON(rw, http.StatusRequestEntityTooLarge, map[string]string{
			"error": fmt.Sprintf("trace body %d bytes exceeds the %d byte cap", r.ContentLength, w.maxBytes())})
		return
	}
	var buf bytes.Buffer
	if r.ContentLength > 0 {
		buf.Grow(int(r.ContentLength))
	}
	if _, err := io.Copy(&buf, http.MaxBytesReader(rw, r.Body, w.maxBytes())); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeJSON(rw, http.StatusRequestEntityTooLarge, map[string]string{
				"error": fmt.Sprintf("trace body exceeds the %d byte cap", w.maxBytes())})
			return
		}
		writeJSON(rw, http.StatusBadRequest, map[string]string{"error": "read body: " + err.Error()})
		return
	}
	data := buf.Bytes()
	if got := service.TraceKeyOf(data); got != key {
		writeJSON(rw, http.StatusBadRequest, map[string]string{
			"error": fmt.Sprintf("content address mismatch: body hashes to %s", got)})
		return
	}
	// Reject bytes that do not even parse as a trace header; a corrupt
	// recording would otherwise poison every shard dispatched against it.
	if _, err := trace.NewReader(bytes.NewReader(data)); err != nil {
		writeJSON(rw, http.StatusUnprocessableEntity, map[string]string{"error": "not a trace: " + err.Error()})
		return
	}
	w.mu.Lock()
	w.pushes[key]++
	w.mu.Unlock()
	w.pool.Traces().Put(&service.TraceArtifact{Key: key, Data: data})
	rw.WriteHeader(http.StatusNoContent)
}

// pullTrace fetches a recording from a peer replica holder into this
// worker's cache: the replication data path, so the coordinator pushes
// each trace's bytes to the fleet at most once.
func (w *Worker) pullTrace(rw http.ResponseWriter, r *http.Request) {
	key := r.PathValue("hash")
	var req struct {
		Sources []string `json:"sources"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(rw, r.Body, 1<<20)).Decode(&req); err != nil {
		writeJSON(rw, http.StatusBadRequest, map[string]string{"error": "bad pull request: " + err.Error()})
		return
	}
	if _, ok := w.pool.Traces().Get(key); ok {
		rw.WriteHeader(http.StatusNoContent)
		return
	}
	if len(req.Sources) == 0 {
		writeJSON(rw, http.StatusBadRequest, map[string]string{"error": "pull has no sources"})
		return
	}
	if err := w.fetchFromPeers(r.Context(), key, req.Sources); err != nil {
		writeJSON(rw, http.StatusBadGateway, map[string]string{"error": err.Error()})
		return
	}
	rw.WriteHeader(http.StatusNoContent)
}

// fetchFromPeers downloads the recording from the first source that has
// it, verifies the content address, and caches it. Concurrent fetches
// of the same key collapse into one transfer.
func (w *Worker) fetchFromPeers(ctx context.Context, key string, sources []string) error {
	for {
		w.mu.Lock()
		ch, inflight := w.fetching[key]
		if !inflight {
			ch = make(chan struct{})
			w.fetching[key] = ch
		}
		w.mu.Unlock()
		if !inflight {
			break
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
		if _, ok := w.pool.Traces().Get(key); ok {
			return nil
		}
		// The other fetch failed; take our own turn.
	}
	defer func() {
		w.mu.Lock()
		close(w.fetching[key])
		delete(w.fetching, key)
		w.mu.Unlock()
	}()

	ctx, sp := telemetry.StartSpan(ctx, "trace.peer_fetch")
	defer sp.End()
	sp.SetAttr("trace.key", key)
	var lastErr error
	for _, src := range sources {
		data, err := w.fetchOne(ctx, key, src)
		if err != nil {
			lastErr = err
			continue
		}
		if got := service.TraceKeyOf(data); got != key {
			lastErr = fmt.Errorf("peer %s served bytes hashing to %s, want %s", src, got, key)
			continue
		}
		if _, err := trace.NewReader(bytes.NewReader(data)); err != nil {
			lastErr = fmt.Errorf("peer %s served a corrupt trace: %w", src, err)
			continue
		}
		w.pool.Traces().Put(&service.TraceArtifact{Key: key, Data: data})
		w.mu.Lock()
		w.peerFetch[key]++
		w.mu.Unlock()
		sp.SetAttr("trace.source", src)
		return nil
	}
	if lastErr == nil {
		lastErr = errors.New("no pull sources")
	}
	sp.Fail(lastErr)
	return fmt.Errorf("pull %s: %w", key, lastErr)
}

func (w *Worker) fetchOne(ctx context.Context, key, src string) ([]byte, error) {
	base := strings.TrimRight(src, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/traces/"+key, nil)
	if err != nil {
		return nil, err
	}
	resp, err := w.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096)) //nolint:errcheck
		return nil, fmt.Errorf("peer %s: HTTP %d", src, resp.StatusCode)
	}
	if resp.ContentLength > w.maxBytes() {
		return nil, fmt.Errorf("peer %s: trace %d bytes exceeds the %d byte cap", src, resp.ContentLength, w.maxBytes())
	}
	var buf bytes.Buffer
	if resp.ContentLength > 0 {
		buf.Grow(int(resp.ContentLength))
	}
	if _, err := io.Copy(&buf, io.LimitReader(resp.Body, w.maxBytes()+1)); err != nil {
		return nil, err
	}
	if int64(buf.Len()) > w.maxBytes() {
		return nil, fmt.Errorf("peer %s: trace exceeds the %d byte cap", src, w.maxBytes())
	}
	return buf.Bytes(), nil
}

func (w *Worker) runShard(rw http.ResponseWriter, r *http.Request) {
	var req ShardRequest
	dec := json.NewDecoder(http.MaxBytesReader(rw, r.Body, maxTraceBody))
	if err := dec.Decode(&req); err != nil {
		writeJSON(rw, http.StatusBadRequest, map[string]string{"error": "bad shard request: " + err.Error()})
		return
	}
	if len(req.Configs) == 0 {
		writeJSON(rw, http.StatusBadRequest, map[string]string{"error": "shard has no configs"})
		return
	}
	// When jrpmd wraps the worker routes in telemetry.Middleware, the
	// request context carries the coordinator's trace; the replay span
	// measures semaphore wait plus the sweep itself. Without a tracer
	// this is the zero-cost disabled path.
	ctx, sp := telemetry.StartSpan(r.Context(), "shard.replay")
	defer sp.End()
	sp.SetAttr("trace.key", req.TraceKey)
	sp.SetInt("shard.configs", int64(len(req.Configs)))
	select {
	case w.sem <- struct{}{}:
		defer func() { <-w.sem }()
	case <-ctx.Done():
		return
	}

	art, ok := w.pool.Traces().Get(req.TraceKey)
	if !ok && len(req.Sources) > 0 {
		// The coordinator named replica holders instead of shipping
		// bytes: fetch worker-to-worker, then proceed as a cache hit.
		if err := w.fetchFromPeers(ctx, req.TraceKey, req.Sources); err == nil {
			art, ok = w.pool.Traces().Get(req.TraceKey)
		}
	}
	if !ok {
		sp.SetAttr("error", "trace_missing")
		writeJSON(rw, http.StatusNotFound, map[string]string{"error": "no cached trace " + req.TraceKey, "code": "trace_missing"})
		return
	}

	compiled, err := w.compiled(req)
	if err != nil {
		sp.Fail(err)
		w.fail(rw, http.StatusUnprocessableEntity, "compile: "+err.Error())
		return
	}
	tr, err := trace.NewReader(bytes.NewReader(art.Data))
	if err != nil {
		sp.Fail(err)
		w.fail(rw, http.StatusUnprocessableEntity, "trace header: "+err.Error())
		return
	}
	if tr.Header().ProgramHash != compiled.TraceHash() {
		sp.SetAttr("error", "hash_mismatch")
		w.fail(rw, http.StatusConflict, "trace was not recorded from the shard's program (hash mismatch)")
		return
	}

	opts := jrpm.Options{Annot: req.Annot, Tracer: req.Tracer, Select: req.Select, Optimize: req.Optimize}
	outs := compiled.SweepTrace(ctx, art.Data, req.Configs, opts, w.replayWorkers)
	for _, o := range outs {
		// A cancellation mid-replay is an infrastructure failure, not an
		// analysis result: the coordinator must re-dispatch, not merge it.
		if o.Err != nil && (errors.Is(o.Err, context.Canceled) || errors.Is(o.Err, context.DeadlineExceeded)) {
			sp.Fail(o.Err)
			writeJSON(rw, http.StatusServiceUnavailable, map[string]string{"error": "shard interrupted: " + o.Err.Error()})
			return
		}
	}

	w.mu.Lock()
	w.shards++
	w.configs += int64(len(req.Configs))
	w.mu.Unlock()
	writeJSON(rw, http.StatusOK, ShardResponse{Outcomes: EncodeOutcomes(outs)})
}

// compiled resolves the shard's program through the pool's artifact
// cache; compilation is deterministic so every worker converges on the
// same artifact.
func (w *Worker) compiled(req ShardRequest) (*jrpm.Compiled, error) {
	opts := jrpm.Options{Annot: req.Annot, Optimize: req.Optimize}
	key := service.CacheKey(req.Source, opts)
	if c, ok := w.pool.Cache().Get(key); ok {
		return c, nil
	}
	c, err := jrpm.Compile(req.Source, opts)
	if err != nil {
		return nil, err
	}
	w.pool.Cache().Put(key, c)
	return c, nil
}

func (w *Worker) fail(rw http.ResponseWriter, code int, msg string) {
	w.mu.Lock()
	w.shardErrs++
	w.mu.Unlock()
	writeJSON(rw, code, map[string]string{"error": msg})
}

// RegisterProm exposes the worker's long-lived shard and transfer
// counters on a metrics registry; jrpmd's worker mode passes the pool's
// registry so /metrics covers cluster traffic alongside the queue,
// cache and VM families.
func (w *Worker) RegisterProm(reg *telemetry.Registry) {
	locked := func(read func() int64) func() int64 {
		return func() int64 {
			w.mu.Lock()
			defer w.mu.Unlock()
			return read()
		}
	}
	reg.CounterFunc("jrpmd_cluster_shards_executed_total",
		"Shards replayed to completion by this worker.",
		locked(func() int64 { return w.shards }))
	reg.CounterFunc("jrpmd_cluster_configs_swept_total",
		"Machine configurations evaluated across all shards.",
		locked(func() int64 { return w.configs }))
	reg.CounterFunc("jrpmd_cluster_shard_errors_total",
		"Shard requests that failed (compile, trace header, hash mismatch).",
		locked(func() int64 { return w.shardErrs }))
	reg.CounterFunc("jrpmd_cluster_trace_pulls_total",
		"Trace recordings served to peers (bytes-out transfers).",
		locked(func() int64 {
			var n int64
			for _, c := range w.pulls {
				n += c
			}
			return n
		}))
	reg.CounterFunc("jrpmd_cluster_trace_pushes_total",
		"Trace recordings received from coordinators (bytes-in transfers).",
		locked(func() int64 {
			var n int64
			for _, c := range w.pushes {
				n += c
			}
			return n
		}))
	reg.CounterFunc("jrpmd_cluster_trace_peer_fetches_total",
		"Trace recordings fetched from peer replica holders.",
		locked(func() int64 {
			var n int64
			for _, c := range w.peerFetch {
				n += c
			}
			return n
		}))
}

// TraceTransfer is one content address's transfer counters on a worker.
type TraceTransfer struct {
	Key         string `json:"key"`
	Pulls       int64  `json:"pulls"`
	Pushes      int64  `json:"pushes"`
	PeerFetches int64  `json:"peer_fetches,omitempty"`
}

// WorkerSnapshot is the worker-side cluster section of GET /v1/metrics.
type WorkerSnapshot struct {
	ShardsExecuted   int64           `json:"shards_executed"`
	ConfigsSwept     int64           `json:"configs_swept"`
	ShardErrors      int64           `json:"shard_errors"`
	TracePulls       int64           `json:"trace_pulls"`
	TracePushes      int64           `json:"trace_pushes"`
	TracePeerFetches int64           `json:"trace_peer_fetches"`
	Traces           []TraceTransfer `json:"traces,omitempty"`
}

// Snapshot reports shard and transfer counters, traces sorted by key.
func (w *Worker) Snapshot() WorkerSnapshot {
	w.mu.Lock()
	defer w.mu.Unlock()
	s := WorkerSnapshot{
		ShardsExecuted: w.shards,
		ConfigsSwept:   w.configs,
		ShardErrors:    w.shardErrs,
	}
	keys := map[string]bool{}
	for k := range w.pulls {
		keys[k] = true
	}
	for k := range w.pushes {
		keys[k] = true
	}
	for k := range w.peerFetch {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	for _, k := range sorted {
		s.TracePulls += w.pulls[k]
		s.TracePushes += w.pushes[k]
		s.TracePeerFetches += w.peerFetch[k]
		s.Traces = append(s.Traces, TraceTransfer{
			Key: k, Pulls: w.pulls[k], Pushes: w.pushes[k], PeerFetches: w.peerFetch[k]})
	}
	return s
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}
