// Focused fault-machinery coverage: circuit-breaker half-open recovery
// and hedged-dispatch loser cancellation, exercised deliberately rather
// than incidentally by the churn integration tests.
package cluster

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"jrpm"
)

// failFirst rejects the first n shard requests with a 500, then serves
// normally — a worker that is sick and then recovers.
func failFirst(n int32) func(http.Handler) http.Handler {
	var count int32
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost && strings.HasPrefix(r.URL.Path, "/v1/shards") {
				if atomic.AddInt32(&count, 1) <= n {
					http.Error(w, `{"error":"injected failure"}`, http.StatusInternalServerError)
					return
				}
			}
			next.ServeHTTP(w, r)
		})
	}
}

// TestClusterBreakerHalfOpenRecovery: consecutive failures open the
// breaker; after the cooldown the worker gets a half-open probe, and a
// recovered worker wins the sweep — no local fallback, results
// byte-identical.
func TestClusterBreakerHalfOpenRecovery(t *testing.T) {
	src, data := recordWorkload(t, "Huffman")
	cfgs := gridConfigs(4)
	want := localRows(t, src, data, cfgs)

	srv, _ := newTestWorker(t, failFirst(2))
	coord := New(Options{
		Workers:              []string{srv.URL},
		ShardConfigs:         2,
		MaxAttempts:          10,
		RetryBase:            5 * time.Millisecond,
		RetryMax:             20 * time.Millisecond,
		BreakerThreshold:     2,
		BreakerCooldown:      40 * time.Millisecond,
		HedgeAfter:           -1,
		Sentinels:            -1,
		DisableLocalFallback: true, // recovery must come from the worker itself
	})
	res, err := coord.Sweep(context.Background(), Grid{
		Traces:  []GridTrace{{Name: "Huffman", Source: src, Data: data}},
		Configs: cfgs,
		Opts:    jrpm.DefaultOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(canonical(t, res.Outcomes[0]), canonical(t, want)) {
		t.Fatal("recovered sweep diverged from local sweep")
	}
	if res.Metrics.BreakerOpens < 1 {
		t.Errorf("breaker opens = %d, want >= 1 (two consecutive failures at threshold 2)", res.Metrics.BreakerOpens)
	}
	if res.Metrics.Failures < 2 {
		t.Errorf("failures = %d, want >= 2", res.Metrics.Failures)
	}
	if res.Metrics.LocalShards != 0 {
		t.Errorf("local shards = %d, want 0 (the half-open probe must recover the worker)", res.Metrics.LocalShards)
	}
}

// slowUntilCanceled delays shard requests by d, but aborts immediately
// (counting the cancellation) when the coordinator cancels the request
// — the observable fate of a hedge loser. The body is drained before
// sleeping: the server only detects a client abort once the request
// body has been consumed.
func slowUntilCanceled(d time.Duration, canceled *int32) func(http.Handler) http.Handler {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost && strings.HasPrefix(r.URL.Path, "/v1/shards") {
				body, err := io.ReadAll(r.Body)
				if err != nil {
					panic(http.ErrAbortHandler)
				}
				r.Body = io.NopCloser(bytes.NewReader(body))
				select {
				case <-time.After(d):
				case <-r.Context().Done():
					atomic.AddInt32(canceled, 1)
					panic(http.ErrAbortHandler)
				}
			}
			next.ServeHTTP(w, r)
		})
	}
}

// TestClusterHedgeLoserCanceled: a straggling shard is hedged onto a
// second worker; when the fast copy wins, the coordinator must cancel
// the slow loser's in-flight request (observed server-side as a
// canceled request context), and the winning rows must be the local
// rows.
func TestClusterHedgeLoserCanceled(t *testing.T) {
	src, data := recordWorkload(t, "Huffman")
	cfgs := gridConfigs(4)
	want := localRows(t, src, data, cfgs)

	var canceled int32
	slowSrv, _ := newTestWorker(t, slowUntilCanceled(5*time.Second, &canceled))
	fastSrv, _ := newTestWorker(t, nil)
	coord := New(Options{
		// Trace affinity puts the single trace's shards on the slow
		// worker; the fast worker only sees the sentinel until hedging
		// re-dispatches the stragglers.
		Workers:          []string{slowSrv.URL, fastSrv.URL},
		ShardConfigs:     4,
		HedgeAfter:       30 * time.Millisecond,
		HedgeInterval:    5 * time.Millisecond,
		DisableStealing:  true, // force the hedge path, not the stealing path
		ShardTimeout:     30 * time.Second,
		BreakerThreshold: 100, // keep the loser's cancellation out of the breaker
	})
	res, err := coord.Sweep(context.Background(), Grid{
		Traces:  []GridTrace{{Name: "Huffman", Source: src, Data: data}},
		Configs: cfgs,
		Opts:    jrpm.DefaultOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(canonical(t, res.Outcomes[0]), canonical(t, want)) {
		t.Fatal("hedged sweep diverged from local sweep")
	}
	if res.Metrics.Hedged < 1 {
		t.Errorf("hedges = %d, want >= 1", res.Metrics.Hedged)
	}
	// The server observes the aborted connection asynchronously, a few
	// milliseconds after the coordinator's client-side cancel returns.
	deadline := time.Now().Add(2 * time.Second)
	for atomic.LoadInt32(&canceled) == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := atomic.LoadInt32(&canceled); n < 1 {
		t.Errorf("loser cancellations observed = %d, want >= 1 (winner must cancel the straggler)", n)
	}
}
