// Package cluster distributes trace-replay sweeps across a fleet of
// jrpmd workers. A sweep grid — recorded traces × hydra configurations —
// is embarrassingly parallel: every (trace, config) cell is a pure
// replay of immutable recorded bytes. The coordinator partitions the
// grid into shards, ships each recording to workers content-addressed
// (a worker pulls a trace's bytes at most once; re-dispatches hit its
// TraceCache), and merges shard results into exactly what trace.Sweep
// would have produced locally — a property enforced at runtime by
// re-executing sentinel shards on a second worker and comparing the
// canonical encodings byte for byte.
//
// The scheduler is fault-tolerant: failed shards retry with exponential
// backoff and jitter, a per-worker circuit breaker stops hammering a
// dead worker, straggler shards are hedged onto a second worker, idle
// workers steal queued shards from busy ones, and when no worker is
// reachable at all the whole grid degrades gracefully to local
// execution. The worker set itself may be dynamic: with a
// fleet.Membership the scheduler re-snapshots the fleet during the
// sweep, admitting workers that join mid-flight and stealing back the
// shards of workers that die, while recordings replicate worker-to-
// worker by rendezvous placement so the coordinator is not the
// bandwidth bottleneck. See DESIGN.md "Distributed trace-replay
// sweeps" and "Fleet".
package cluster

import (
	"errors"

	"jrpm"
	"jrpm/internal/annotate"
	"jrpm/internal/core"
	"jrpm/internal/hydra"
	"jrpm/internal/profile"
)

// ErrNoWorkers is wrapped by Sweep when every configured worker was
// excluded (unreachable or refused) and local fallback is disabled.
var ErrNoWorkers = errors.New("cluster: no usable workers")

// ErrDeterminism is wrapped by Sweep when a sentinel shard re-executed
// on a second worker produced different canonical bytes — a worker is
// returning nondeterministic or corrupted results.
var ErrDeterminism = errors.New("cluster: sentinel determinism check failed")

// GridTrace is one recording in a sweep grid: the source program it was
// recorded from and the raw trace bytes. The content address (SHA-256 of
// Data) is computed by the coordinator; workers compile Source
// themselves (compilation is deterministic, pinned by the trace header's
// program hash) so recordings ship without their programs.
type GridTrace struct {
	Name   string
	Source string
	Data   []byte
}

// Grid is a full sweep: every trace replayed under every configuration.
// Opts supplies the compile-stage options (annotation policy, optimizer)
// and the run-stage tracer/selection policies shared by all cells; each
// Configs entry is the machine under analysis. Opts.Cfg is ignored.
type Grid struct {
	Traces  []GridTrace
	Configs []hydra.Config
	Opts    jrpm.Options
}

// VersionInfo is the body of GET /v1/version: enough for a coordinator
// to refuse a mixed-format worker with a clear error instead of a
// decode failure deep inside a shard.
type VersionInfo struct {
	Module      string `json:"module"`
	TraceFormat int    `json:"trace_format"`
	Go          string `json:"go,omitempty"`
}

// ShardRequest is the body of POST /v1/shards: replay the worker-cached
// recording TraceKey under Configs. Source and the compile-stage options
// identify the program; the run-stage options are sent pre-normalized
// and used verbatim so local and remote replays agree bit for bit.
type ShardRequest struct {
	TraceKey string                `json:"trace_key"`
	Source   string                `json:"source"`
	Optimize bool                  `json:"optimize"`
	Annot    annotate.Options      `json:"annot"`
	Tracer   core.Options          `json:"tracer"`
	Select   profile.SelectOptions `json:"select"`
	Configs  []hydra.Config        `json:"configs"`
	// Sources lists replica holders (worker base URLs) the executing
	// worker may fetch the recording from on a cache miss, so the
	// coordinator ships each trace's bytes at most once fleet-wide.
	Sources []string `json:"sources,omitempty"`
}

// ShardResponse is the body of a successful POST /v1/shards.
type ShardResponse struct {
	Outcomes []OutcomeRow `json:"outcomes"`
}

// Result is a completed cluster sweep. Outcomes is indexed
// [trace][config], congruent with Grid.Traces × Grid.Configs, and every
// row is exactly what EncodeOutcome(trace.Sweep(...)) yields locally.
type Result struct {
	Outcomes [][]OutcomeRow
	// Degraded reports that no worker was reachable and the whole grid
	// ran locally.
	Degraded bool
	Metrics  Snapshot
}
