package annotate_test

import (
	"strings"
	"testing"

	"jrpm/internal/annotate"
	"jrpm/internal/lang"
	"jrpm/internal/tir"
	"jrpm/internal/vmsim"
)

func compile(t *testing.T, src string) *tir.Program {
	t.Helper()
	prog, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func apply(t *testing.T, prog *tir.Program, opts annotate.Options) int {
	t.Helper()
	n, err := annotate.Apply(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// run executes main with the given int globals and returns out.
func run(t *testing.T, prog *tir.Program, globals map[string][]int64) []int64 {
	t.Helper()
	vm := vmsim.New(prog)
	for name, vals := range globals {
		if err := vm.BindGlobalInts(name, vals); err != nil {
			t.Fatal(err)
		}
	}
	if err := vm.Run("main"); err != nil {
		t.Fatal(err)
	}
	out, err := vm.GlobalInts("out")
	if err != nil {
		t.Fatal(err)
	}
	return out
}

const nestSrc = `
global a: int[];
global out: int[];
func main() {
	var i: int = 0;
	var total: int = 0;
	while (i < 8) {
		var j: int = 0;
		while (j < 8) {
			total = total + a[(i*8+j) % len(a)];
			if (total > 1000000) { break; }
			j++;
		}
		i++;
	}
	out[0] = total;
}`

// TestAnnotationPreservesSemantics: inserting annotations must not change
// program results, under any option combination.
func TestAnnotationPreservesSemantics(t *testing.T) {
	globals := map[string][]int64{
		"a":   {3, 1, 4, 1, 5, 9, 2, 6},
		"out": {0},
	}
	clean := compile(t, nestSrc)
	apply(t, clean, annotate.Options{})
	want := run(t, clean, globals)

	for _, opts := range []annotate.Options{
		{LoopMarkers: true},
		{LoopMarkers: true, Locals: true},
		annotate.Base(),
		annotate.Optimized(),
	} {
		prog := compile(t, nestSrc)
		apply(t, prog, opts)
		if err := tir.Validate(prog); err != nil {
			t.Fatalf("opts %+v: invalid program: %v", opts, err)
		}
		got := run(t, prog, globals)
		if got[0] != want[0] {
			t.Fatalf("opts %+v: out = %d, want %d", opts, got[0], want[0])
		}
	}
}

// countOps tallies instruction kinds across a program.
func countOps(prog *tir.Program) map[tir.Op]int {
	counts := map[tir.Op]int{}
	for _, f := range prog.Funcs {
		for bi := range f.Blocks {
			for ii := range f.Blocks[bi].Instrs {
				counts[f.Blocks[bi].Instrs[ii].Op]++
			}
		}
	}
	return counts
}

// TestMarkerPlacement: each candidate loop gets sloop on entries, eoi on
// back edges, eloop on exits, and one readstats site per loop.
func TestMarkerPlacement(t *testing.T) {
	prog := compile(t, nestSrc)
	apply(t, prog, annotate.Base())
	counts := countOps(prog)
	if counts[tir.OpSLoop] != 2 {
		t.Errorf("sloop count = %d, want 2 (one entry edge per loop)", counts[tir.OpSLoop])
	}
	// The inner loop has two exits (break + condition), the outer one.
	if counts[tir.OpELoop] != 3 {
		t.Errorf("eloop count = %d, want 3", counts[tir.OpELoop])
	}
	if counts[tir.OpEOI] != 2 {
		t.Errorf("eoi count = %d, want 2 (one back edge per loop)", counts[tir.OpEOI])
	}
	if counts[tir.OpReadStats] != 3 {
		t.Errorf("readstats count = %d, want 3 (at each eloop, unhoisted)", counts[tir.OpReadStats])
	}
}

// TestHoistedReadStats: in a single-child nest the inner loop's statistics
// are read at the outer loop's exit.
func TestHoistedReadStats(t *testing.T) {
	prog := compile(t, nestSrc)
	apply(t, prog, annotate.Optimized())
	// Find the inner loop's Hoisted flag.
	hoisted := 0
	for _, l := range prog.Loops {
		if l.Hoisted {
			hoisted++
		}
	}
	if hoisted != 1 {
		t.Fatalf("hoisted loops = %d, want 1 (the inner loop)", hoisted)
	}
	// Readstats for the inner loop must sit in outer-exit trampolines
	// only: the inner loop's own exits carry none.
	var innerID int
	for _, l := range prog.Loops {
		if l.StaticDepth == 2 {
			innerID = l.ID
		}
	}
	f := prog.Funcs[0]
	outer := prog.Loops[0]
	if outer.StaticDepth != 1 {
		t.Fatal("loop 0 not outermost")
	}
	inOuter := map[int]bool{}
	for _, b := range outer.Blocks {
		inOuter[b] = true
	}
	for bi := range f.Blocks {
		for ii := range f.Blocks[bi].Instrs {
			in := &f.Blocks[bi].Instrs[ii]
			if in.Op == tir.OpReadStats && in.Loop == innerID && inOuter[bi] {
				t.Fatalf("inner loop's readstats found inside the outer loop body (block %d)", bi)
			}
		}
	}
}

// TestOptimizedInsertsFewerLocals: the Figure 6 optimization must strictly
// reduce local annotations on code with repeated loads.
func TestOptimizedInsertsFewerLocals(t *testing.T) {
	src := `
global a: int[];
global out: int[];
func main() {
	var v: int = 0;
	var i: int = 0;
	while (i < len(a)) {
		if (a[i] > 0) { v = v + a[i]; }
		out[0] = v + v + v; // repeated loads of v in one block
		i++;
	}
}`
	base := compile(t, src)
	nBase := apply(t, base, annotate.Base())
	opt := compile(t, src)
	nOpt := apply(t, opt, annotate.Optimized())
	if nOpt >= nBase {
		t.Fatalf("optimized annotations (%d) not fewer than base (%d)", nOpt, nBase)
	}
	cb, co := countOps(base), countOps(opt)
	if co[tir.OpLWL] >= cb[tir.OpLWL] {
		t.Fatalf("optimized lwl (%d) not fewer than base (%d)", co[tir.OpLWL], cb[tir.OpLWL])
	}
}

// TestMultiLoopBreakUnwindsAllLoops: a break leaving two loops at once
// must produce eloop for both, innermost first.
func TestMultiLoopBreakUnwindsAllLoops(t *testing.T) {
	src := `
global a: int[];
global out: int[];
func main() {
	var i: int = 0;
	while (i < 10) {
		var j: int = 0;
		while (j < 10) {
			if (a[(i+j) % len(a)] == 7) {
				out[0] = i*100 + j;
				return; // leaves both loops
			}
			j++;
		}
		i++;
	}
	out[0] = -1;
}`
	prog := compile(t, src)
	apply(t, prog, annotate.Options{LoopMarkers: true})
	// Find a trampoline block containing two eloops.
	f := prog.Funcs[0]
	found := false
	for bi := range f.Blocks {
		var loops []int
		for ii := range f.Blocks[bi].Instrs {
			if f.Blocks[bi].Instrs[ii].Op == tir.OpELoop {
				loops = append(loops, f.Blocks[bi].Instrs[ii].Loop)
			}
		}
		if len(loops) == 2 {
			found = true
			// Innermost (deeper) loop must be closed first.
			if prog.Loops[loops[0]].StaticDepth <= prog.Loops[loops[1]].StaticDepth {
				t.Fatalf("eloop order %v closes outer before inner", loops)
			}
		}
	}
	if !found {
		t.Fatal("no trampoline closes both loops on the early return path")
	}
	// And the program still runs correctly with the markers.
	got := run(t, prog, map[string][]int64{"a": {1, 2, 7, 3}, "out": {0}})
	if got[0] != 2 {
		t.Fatalf("out = %d, want 2 (i=0, j=2)", got[0])
	}
}

// TestNonCandidateLoopsGetNoMarkers: loops rejected by the scalar screen
// are recorded in the loop table but not instrumented.
func TestNonCandidateLoopsGetNoMarkers(t *testing.T) {
	src := `
global a: int[];
global out: int[];
func main() {
	var p: int = 0;
	while (a[p] != -1) {
		p = a[p]; // serial pointer chase, rejected
	}
	out[0] = p;
}`
	prog := compile(t, src)
	apply(t, prog, annotate.Base())
	if len(prog.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(prog.Loops))
	}
	if prog.Loops[0].Candidate {
		t.Fatal("pointer-chase loop not rejected")
	}
	if !strings.Contains(prog.Loops[0].Reject, "recurrence") {
		t.Fatalf("reject reason %q", prog.Loops[0].Reject)
	}
	counts := countOps(prog)
	if counts[tir.OpSLoop] != 0 || counts[tir.OpEOI] != 0 || counts[tir.OpELoop] != 0 {
		t.Fatalf("rejected loop was instrumented: %v", counts)
	}
}

// TestLoopTableStableAcrossOptions: loop IDs and candidates must not
// depend on which annotations are inserted (the recorder relies on this).
func TestLoopTableStableAcrossOptions(t *testing.T) {
	a := compile(t, nestSrc)
	apply(t, a, annotate.Options{})
	b := compile(t, nestSrc)
	apply(t, b, annotate.Optimized())
	if len(a.Loops) != len(b.Loops) {
		t.Fatalf("loop counts differ: %d vs %d", len(a.Loops), len(b.Loops))
	}
	for i := range a.Loops {
		if a.Loops[i].Header != b.Loops[i].Header ||
			a.Loops[i].Func != b.Loops[i].Func ||
			a.Loops[i].Candidate != b.Loops[i].Candidate ||
			a.Loops[i].StaticDepth != b.Loops[i].StaticDepth {
			t.Fatalf("loop %d differs across options:\n%+v\n%+v", i, a.Loops[i], b.Loops[i])
		}
	}
}

// TestFigure5SampleLoop reproduces the paper's Figure 5: the sample while
// loop with a conditionally-updated local compiles to code whose
// annotation pattern matches the figure — one sloop reserving one local
// timestamp slot, lwl on the condition's load, swl on the conditional
// decrement, eoi at the back edge, eloop + read-statistics at the exit.
func TestFigure5SampleLoop(t *testing.T) {
	src := `
global this_val: int[];
func call(): int {
	return this_val[0] & 1;
}
func main() {
	var lcl_v: int = 10;
	while (lcl_v > 0) {
		if (call() != 0) {
			lcl_v = lcl_v - 1;
		} else {
			this_val[0] = this_val[0] + 1;
		}
	}
}`
	prog := compile(t, src)
	apply(t, prog, annotate.Optimized())

	if len(prog.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(prog.Loops))
	}
	info := prog.Loops[0]
	if !info.Candidate {
		t.Fatalf("loop rejected: %s", info.Reject)
	}
	// lcl_v is conditionally decremented -> not an inductor -> exactly one
	// reserved local timestamp, as "sloop 1" in the figure.
	if info.NumLocals != 1 {
		t.Fatalf("reserved locals = %d, want 1 (lcl_v)", info.NumLocals)
	}
	counts := countOps(prog)
	if counts[tir.OpSLoop] != 1 || counts[tir.OpELoop] != 1 || counts[tir.OpEOI] != 1 {
		t.Fatalf("marker counts = sloop %d / eloop %d / eoi %d, want 1/1/1",
			counts[tir.OpSLoop], counts[tir.OpELoop], counts[tir.OpEOI])
	}
	if counts[tir.OpLWL] == 0 || counts[tir.OpSWL] == 0 {
		t.Fatalf("lwl/swl = %d/%d, want both > 0", counts[tir.OpLWL], counts[tir.OpSWL])
	}
	if counts[tir.OpReadStats] != 1 {
		t.Fatalf("readstats = %d, want 1 at the loop exit", counts[tir.OpReadStats])
	}
	// The sloop instruction reserves exactly NumLocals slots.
	f := prog.Funcs[prog.Loops[0].Func]
	for bi := range f.Blocks {
		for ii := range f.Blocks[bi].Instrs {
			in := &f.Blocks[bi].Instrs[ii]
			if in.Op == tir.OpSLoop && in.Imm != int64(info.NumLocals) {
				t.Fatalf("sloop reserves %d, loop table says %d", in.Imm, info.NumLocals)
			}
		}
	}
	// And the annotated program still terminates correctly: lcl_v counts
	// down on odd values of this_val, which the else branch increments.
	vm := vmsim.New(prog)
	if err := vm.BindGlobalInts("this_val", []int64{0}); err != nil {
		t.Fatal(err)
	}
	if err := vm.Run("main"); err != nil {
		t.Fatalf("annotated Figure 5 loop failed: %v", err)
	}
}
