// Package annotate implements the JIT compiler's annotation pass
// (sections 3, 5.1 of the paper): it discovers every natural loop, runs
// the scalar screen to mark potential STLs, and rewrites the TIR with the
// annotating instructions of Table 4 — sloop on loop entry edges, eoi on
// back edges, eloop on exit edges, lwl/swl around named-local accesses,
// and the read-statistics calls (optionally hoisted to the outermost loop
// of a single-child nest, the optimization behind Figure 6).
package annotate

import (
	"sort"

	"jrpm/internal/cfg"
	"jrpm/internal/scalar"
	"jrpm/internal/tir"
)

// Options selects which annotations to insert. The zero value inserts
// nothing (a clean program for baseline timing).
type Options struct {
	LoopMarkers     bool // sloop / eloop / eoi
	Locals          bool // lwl / swl
	ReadStats       bool // read-statistics calls at loop exits
	OptimizedLocals bool // annotate only the first load of a var per block
	HoistReadStats  bool // hoist read-statistics to the outermost single-child loop
}

// Base returns the unoptimized full-annotation options (1st column of
// Figure 6).
func Base() Options {
	return Options{LoopMarkers: true, Locals: true, ReadStats: true}
}

// Optimized returns the optimized full-annotation options (2nd column of
// Figure 6).
func Optimized() Options {
	return Options{LoopMarkers: true, Locals: true, ReadStats: true,
		OptimizedLocals: true, HoistReadStats: true}
}

// Apply discovers loops and rewrites prog in place according to opts. It
// always fills prog.Loops (the potential-STL table) even when opts insert
// no instructions, so callers can inspect loop structure on clean
// programs. It returns the number of annotation instructions inserted.
//
// Apply mutates prog and is the last compile-stage pass: per the
// tir.Program concurrency contract it must run before the program is
// published to other goroutines (the jrpmd artifact cache shares
// fully-annotated programs across workers), and must never run on a
// program that is already cached or executing.
func Apply(prog *tir.Program, opts Options) (int, error) {
	prog.Loops = nil
	inserted := 0
	for fi, f := range prog.Funcs {
		n, err := applyFunc(prog, fi, f, opts)
		if err != nil {
			return inserted, err
		}
		inserted += n
	}
	if err := tir.Validate(prog); err != nil {
		return inserted, err
	}
	prog.AssignPCs()
	return inserted, nil
}

// loopRec couples a cfg loop with its program-wide metadata.
type loopRec struct {
	l    *cfg.Loop
	id   int
	sc   *scalar.LoopScalars
	info *tir.LoopInfo
}

func applyFunc(prog *tir.Program, fi int, f *tir.Function, opts Options) (int, error) {
	g := cfg.Build(f)
	forest := g.NaturalLoops()
	if len(forest.Loops) == 0 {
		return 0, nil
	}

	// Register loops (outer before inner, thanks to forest ordering).
	recs := make([]*loopRec, 0, len(forest.Loops))
	byLoop := map[*cfg.Loop]*loopRec{}
	for _, l := range forest.Loops {
		sc := scalar.Analyze(f, l, g, forest)
		id := len(prog.Loops)
		blocks := make([]int, 0, len(l.Blocks))
		for b := range l.Blocks {
			blocks = append(blocks, b)
		}
		sort.Ints(blocks)
		info := tir.LoopInfo{
			ID:          id,
			Func:        fi,
			Header:      l.Header,
			Name:        f.Name + ":" + itoa(l.Line),
			Line:        l.Line,
			StaticDepth: l.Depth,
			Blocks:      blocks,
			AnnLocals:   sc.Annotated,
			NumLocals:   len(sc.Annotated),
			Candidate:   sc.Reject == "",
			Reject:      sc.Reject,
		}
		prog.Loops = append(prog.Loops, info)
		rec := &loopRec{l: l, id: id, sc: sc, info: &prog.Loops[id]}
		recs = append(recs, rec)
		byLoop[l] = rec
	}

	if !opts.LoopMarkers {
		return 0, nil
	}

	// Decide where each candidate loop's statistics are read.
	readAt := map[int]int{} // loop id -> loop id whose exit reads it
	for _, r := range recs {
		if !r.info.Candidate {
			continue
		}
		target := r
		if opts.HoistReadStats {
			for target.l.Parent != nil {
				p := byLoop[target.l.Parent]
				if p == nil || !p.info.Candidate || len(target.l.Parent.Children) != 1 {
					break
				}
				target = p
			}
		}
		readAt[r.id] = target.id
		if target.id != r.id {
			r.info.Hoisted = true
		}
	}
	// readsHere[loop id] = ids whose stats are read at this loop's exits,
	// innermost (self) first.
	readsHere := map[int][]int{}
	for _, r := range recs {
		if t, ok := readAt[r.id]; ok {
			readsHere[t] = append(readsHere[t], r.id)
		}
	}
	for _, ids := range readsHere {
		sort.Sort(sort.Reverse(sort.IntSlice(ids)))
	}

	// candidateLoopsOf returns the candidate loops containing block b,
	// innermost first.
	candidateLoopsOf := func(b int) []*loopRec {
		var out []*loopRec
		for i := len(recs) - 1; i >= 0; i-- {
			if recs[i].info.Candidate && recs[i].l.Contains(b) {
				out = append(out, recs[i])
			}
		}
		return out
	}

	inserted := 0

	// Plan edge rewrites against the original CFG: for each edge u->v that
	// exits, re-enters (back edge) or enters candidate loops, splice in a
	// trampoline block carrying eloop/eoi/readstats/sloop instructions.
	type edge struct{ from, to int }
	plans := map[edge][]tir.Instr{}
	var planOrder []edge // splice order must not depend on map iteration
	addPlan := func(u, v int, ins ...tir.Instr) {
		e := edge{u, v}
		if _, ok := plans[e]; !ok {
			planOrder = append(planOrder, e)
		}
		plans[e] = append(plans[e], ins...)
		inserted += len(ins)
	}
	for u := range f.Blocks {
		for _, v := range f.Blocks[u].Targets {
			var chain []tir.Instr
			line := 0
			if t := f.Blocks[u].Terminator(); t != nil {
				line = t.Line
			}
			// Loops exited: contain u but not v; innermost first.
			for _, r := range candidateLoopsOf(u) {
				if r.l.Contains(v) {
					continue
				}
				chain = append(chain, tir.Instr{Op: tir.OpELoop, Loop: r.id, Imm: int64(r.info.NumLocals), Line: line})
				if opts.ReadStats {
					for _, id := range readsHere[r.id] {
						chain = append(chain, tir.Instr{Op: tir.OpReadStats, Loop: id, Line: line})
					}
				}
			}
			// Back edge: v is the header of a candidate loop containing u.
			for _, r := range recs {
				if r.info.Candidate && r.l.Header == v && r.l.Contains(u) {
					chain = append(chain, tir.Instr{Op: tir.OpEOI, Loop: r.id, Line: line})
				}
			}
			// Loop entered: v is the header of a candidate loop not
			// containing u.
			for _, r := range recs {
				if r.info.Candidate && r.l.Header == v && !r.l.Contains(u) {
					chain = append(chain, tir.Instr{Op: tir.OpSLoop, Loop: r.id, Imm: int64(r.info.NumLocals), Line: line})
				}
			}
			if len(chain) > 0 {
				addPlan(u, v, chain...)
			}
		}
	}

	// Apply the planned splices. Each distinct (u,v) pair gets one
	// trampoline; parallel identical edges (u->v twice, e.g. a BrIf with
	// equal targets) share it, which is semantically identical.
	for _, e := range planOrder {
		chain := plans[e]
		nb := len(f.Blocks)
		chain = append(chain, tir.Instr{Op: tir.OpBr, Line: chain[len(chain)-1].Line})
		f.Blocks = append(f.Blocks, tir.Block{Instrs: chain, Targets: []int{e.to}})
		for ti, t := range f.Blocks[e.from].Targets {
			if t == e.to {
				f.Blocks[e.from].Targets[ti] = nb
			}
		}
	}

	// Local-variable annotations (lwl/swl) inside candidate loop blocks.
	if opts.Locals {
		inserted += insertLocalAnnotations(f, recs, opts.OptimizedLocals)
	}
	return inserted, nil
}

// insertLocalAnnotations inserts lwl/swl before LdLoc/StLoc of slots that
// some enclosing candidate loop tracks. With optimized=true three sound
// elisions apply (the JIT optimizations behind Figure 6's second bars):
//
//   - only the first load of a slot per basic block gets an lwl — the
//     first load yields the shortest (critical) dependency arc, so later
//     loads in the block are redundant for the analysis;
//   - a load after a store of the same slot in the same block needs no
//     lwl — the dependency is intra-thread by construction;
//   - only the last store of a slot per basic block gets an swl — only
//     the latest store timestamp can be retrieved by a later thread.
func insertLocalAnnotations(f *tir.Function, recs []*loopRec, optimized bool) int {
	// trackedIn[b] = union of AnnLocals over candidate loops containing b.
	tracked := map[int]map[int]bool{}
	for _, r := range recs {
		if !r.info.Candidate {
			continue
		}
		for b := range r.l.Blocks {
			m := tracked[b]
			if m == nil {
				m = map[int]bool{}
				tracked[b] = m
			}
			for _, s := range r.info.AnnLocals {
				m[s] = true
			}
		}
	}
	inserted := 0
	for bi := range f.Blocks {
		m := tracked[bi]
		if len(m) == 0 {
			continue
		}
		old := f.Blocks[bi].Instrs
		// With optimization, find the last store of each slot in the
		// block: earlier store timestamps can never be retrieved.
		lastStore := map[int]int{}
		if optimized {
			for i := range old {
				if old[i].Op == tir.OpStLoc && m[old[i].Slot] {
					lastStore[old[i].Slot] = i
				}
			}
		}
		out := make([]tir.Instr, 0, len(old)+4)
		covered := map[int]bool{} // slot already annotated or stored here
		for i, in := range old {
			switch {
			case in.Op == tir.OpLdLoc && m[in.Slot]:
				if !optimized || !covered[in.Slot] {
					out = append(out, tir.Instr{Op: tir.OpLWL, Slot: in.Slot, Line: in.Line})
					covered[in.Slot] = true
					inserted++
				}
			case in.Op == tir.OpStLoc && m[in.Slot]:
				if !optimized || lastStore[in.Slot] == i {
					out = append(out, tir.Instr{Op: tir.OpSWL, Slot: in.Slot, Line: in.Line})
					inserted++
				}
				covered[in.Slot] = true
			}
			out = append(out, in)
		}
		f.Blocks[bi].Instrs = out
	}
	return inserted
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [24]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
