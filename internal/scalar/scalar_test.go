package scalar_test

import (
	"strings"
	"testing"

	"jrpm/internal/cfg"
	"jrpm/internal/lang"
	"jrpm/internal/scalar"
	"jrpm/internal/tir"
)

// analyze compiles src and returns the scalar analysis of the loop whose
// header is at the given nest position (0 = outermost discovered).
func analyze(t *testing.T, src string, loopIdx int) (*scalar.LoopScalars, *tir.Function) {
	t.Helper()
	prog, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	f, _, ok := prog.Lookup("main")
	if !ok {
		t.Fatal("no main")
	}
	g := cfg.Build(f)
	forest := g.NaturalLoops()
	if loopIdx >= len(forest.Loops) {
		t.Fatalf("loop %d not found; have %d", loopIdx, len(forest.Loops))
	}
	return scalar.Analyze(f, forest.Loops[loopIdx], g, forest), f
}

// classOf returns the classification of the named local.
func classOf(t *testing.T, sc *scalar.LoopScalars, f *tir.Function, name string) scalar.Class {
	t.Helper()
	for slot, cls := range sc.Classes {
		if f.Locals[slot].Name == name {
			return cls
		}
	}
	t.Fatalf("local %q not accessed in loop", name)
	return 0
}

func TestInductorClassification(t *testing.T) {
	sc, f := analyze(t, `
global a: int[];
func main() {
	var i: int = 0;
	var sum: int = 0;
	var x: int = 5;
	while (i < len(a)) {
		sum += a[i];     // reduction
		a[i] = a[i] * x; // x invariant
		i++;             // inductor
	}
}`, 0)
	if got := classOf(t, sc, f, "i"); got != scalar.ClassInductor {
		t.Errorf("i classified %v, want inductor", got)
	}
	if got := classOf(t, sc, f, "sum"); got != scalar.ClassReduction {
		t.Errorf("sum classified %v, want reduction", got)
	}
	if got := classOf(t, sc, f, "x"); got != scalar.ClassInvariant {
		t.Errorf("x classified %v, want invariant", got)
	}
	if len(sc.Annotated) != 0 {
		t.Errorf("annotated = %v, want none", sc.Annotated)
	}
	if sc.Reject != "" {
		t.Errorf("loop rejected: %s", sc.Reject)
	}
}

// TestHuffmanInPDistinction is the paper's key case (Figure 3): in_p++
// inside the inner loop is an eliminable iterator for the inner loop but a
// genuine dependency for the outer loop.
func TestHuffmanInPDistinction(t *testing.T) {
	src := `
global bits: int[];
global out: int[];
func main() {
	var in_p: int = 0;
	var out_p: int = 0;
	do {
		var n: int = 0;
		while (bits[in_p] == 0 && n < 10) {
			n++;
			in_p++;
		}
		out[out_p] = n;
		out_p++;
	} while (in_p < len(bits) - 1);
}`
	// Loops are discovered outer-first.
	outer, f := analyze(t, src, 0)
	inner, _ := analyze(t, src, 1)
	if got := classOf(t, outer, f, "in_p"); got != scalar.ClassPlain {
		t.Errorf("outer loop: in_p classified %v, want plain (data-dependent advance)", got)
	}
	if got := classOf(t, inner, f, "in_p"); got != scalar.ClassInductor {
		t.Errorf("inner loop: in_p classified %v, want inductor", got)
	}
	if got := classOf(t, outer, f, "out_p"); got != scalar.ClassInductor {
		t.Errorf("outer loop: out_p classified %v, want inductor", got)
	}
}

func TestConditionalUpdateIsNotInductor(t *testing.T) {
	// Figure 5's lcl_v--: updated only on one branch, so not once per
	// iteration — a real dependency the tracer must watch.
	sc, f := analyze(t, `
global a: int[];
func main() {
	var v: int = 10;
	var i: int = 0;
	while (i < len(a)) {
		if (a[i] > 0) {
			v = v - 1;
		}
		a[i] = v;
		i++;
	}
}`, 0)
	if got := classOf(t, sc, f, "v"); got != scalar.ClassPlain {
		t.Errorf("v classified %v, want plain (conditional update)", got)
	}
	if len(sc.Annotated) != 1 {
		t.Errorf("annotated = %v, want just v", sc.Annotated)
	}
}

func TestPrivateClassification(t *testing.T) {
	sc, f := analyze(t, `
global a: int[];
func main() {
	var i: int = 0;
	while (i < len(a)) {
		var tmp: int = a[i] * 3; // written before any read, every iteration
		a[i] = tmp + tmp;
		i++;
	}
}`, 0)
	if got := classOf(t, sc, f, "tmp"); got != scalar.ClassPrivate {
		t.Errorf("tmp classified %v, want private", got)
	}
}

func TestConditionalWriteIsNotPrivate(t *testing.T) {
	sc, f := analyze(t, `
global a: int[];
func main() {
	var i: int = 0;
	var last: int = 0;
	while (i < len(a)) {
		if (a[i] > 5) {
			last = a[i];
		}
		a[i] = last; // reads a value possibly from a previous iteration
		i++;
	}
}`, 0)
	if got := classOf(t, sc, f, "last"); got != scalar.ClassPlain {
		t.Errorf("last classified %v, want plain (conditionally defined)", got)
	}
}

// TestReductionRequiresExclusiveUse: an accumulator read for another
// purpose inside the loop is not transformable.
func TestReductionRequiresExclusiveUse(t *testing.T) {
	sc, f := analyze(t, `
global a: int[];
func main() {
	var s: int = 0;
	var i: int = 0;
	while (i < len(a)) {
		s += a[i];
		a[i] = s; // observes intermediate values
		i++;
	}
}`, 0)
	if got := classOf(t, sc, f, "s"); got != scalar.ClassPlain {
		t.Errorf("s classified %v, want plain (intermediate values observed)", got)
	}
}

// TestSerialRecurrenceScreen rejects the obvious end-of-loop-store /
// start-of-loop-load recurrence of section 4.1.
func TestSerialRecurrenceScreen(t *testing.T) {
	sc, _ := analyze(t, `
global a: int[];
func main() {
	var p: int = 0;
	while (a[p] != -1) {
		p = a[p];
	}
}`, 0)
	if sc.Reject == "" {
		t.Fatal("pointer-chase loop not rejected by the scalar screen")
	}
	if !strings.Contains(sc.Reject, "p") {
		t.Fatalf("rejection %q does not name the recurrence variable", sc.Reject)
	}
}

// TestMulReduction: products are reductions too.
func TestMulReduction(t *testing.T) {
	sc, f := analyze(t, `
global a: int[];
func main() {
	var prod: int = 1;
	var i: int = 0;
	while (i < len(a)) {
		prod *= a[i];
		i++;
	}
}`, 0)
	if got := classOf(t, sc, f, "prod"); got != scalar.ClassReduction {
		t.Errorf("prod classified %v, want reduction", got)
	}
}

// TestFloatReduction: float accumulators behave like int ones.
func TestFloatReduction(t *testing.T) {
	sc, f := analyze(t, `
global x: float[];
func main() {
	var s: float = 0.0;
	var i: int = 0;
	while (i < len(x)) {
		s = s + x[i];
		i++;
	}
}`, 0)
	if got := classOf(t, sc, f, "s"); got != scalar.ClassReduction {
		t.Errorf("s classified %v, want reduction", got)
	}
}

// TestClassString covers the diagnostic names.
func TestClassString(t *testing.T) {
	want := map[scalar.Class]string{
		scalar.ClassPlain:     "plain",
		scalar.ClassInductor:  "inductor",
		scalar.ClassReduction: "reduction",
		scalar.ClassInvariant: "invariant",
		scalar.ClassPrivate:   "private",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("Class(%d).String() = %q, want %q", c, c.String(), s)
		}
	}
}
