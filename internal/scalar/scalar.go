// Package scalar implements the simple scalar screen of section 4.1:
//
//	"Any loop without obvious loop-carried dependencies that would
//	 completely eliminate speedup (e.g. end-of-loop store and
//	 start-of-loop load) is considered a potential STL. Loop inductors,
//	 which are dependencies that can be eliminated by the compiler, are
//	 ignored so that potentially parallel loops are not overlooked.
//	 Scalar analysis is used to identify simple dependencies, but we forgo
//	 advanced techniques."
//
// The analysis classifies each named local touched by a loop as an
// inductor, a reduction, or a plain scalar. Inductors and reductions are
// excluded from the loop's annotated local-variable set because the JIT
// eliminates them when the loop is recompiled speculatively
// (non-violating loop inductors; sum/min/max reduction transformation).
//
// A variable is an inductor of loop L only when every store is i = i ± c
// with a constant c AND executes exactly once per iteration of L (its
// block is in L, outside any loop nested in L, and dominates L's
// latches). This distinction matters: in the paper's Huffman example
// (Figure 3) in_p++ sits inside the inner loop, so for the outer loop
// in_p advances a data-dependent amount per iteration — a real
// loop-carried dependency, and indeed the critical arc the tracer must
// find — while for the inner loop the same update is a plain eliminable
// iterator.
package scalar

import (
	"sort"

	"jrpm/internal/cfg"
	"jrpm/internal/tir"
)

// Class is the classification of one named local with respect to a loop.
type Class uint8

// Classifications.
const (
	// ClassPlain scalars carry potential loop-borne dependencies: they are
	// annotated for tracing and globalized + synchronized by the
	// recompiler.
	ClassPlain Class = iota
	// ClassInductor variables are i = i ± const once per iteration,
	// rewritten as non-violating iterators.
	ClassInductor
	// ClassReduction accumulators (s = s OP e, never otherwise read) are
	// privatized and merged at loop shutdown.
	ClassReduction
	// ClassInvariant locals are never stored in the loop: they are
	// register-allocated at loop startup and can never cause a dependency.
	ClassInvariant
	// ClassPrivate locals are written before any read in the loop header,
	// so every iteration sees only its own value; each thread gets a
	// private copy.
	ClassPrivate
)

func (c Class) String() string {
	switch c {
	case ClassInductor:
		return "inductor"
	case ClassReduction:
		return "reduction"
	case ClassInvariant:
		return "invariant"
	case ClassPrivate:
		return "private"
	default:
		return "plain"
	}
}

// LoopScalars is the scalar-analysis result for one natural loop.
type LoopScalars struct {
	// Accessed lists every named-local slot read or written inside the
	// loop, ascending.
	Accessed []int
	// Classes maps each accessed slot to its classification.
	Classes map[int]Class
	// Annotated lists the slots the annotation pass should track for this
	// loop: Accessed minus inductors and reductions.
	Annotated []int
	// Reject is non-empty when the screen drops the loop from the
	// potential-STL set, with the reason.
	Reject string
}

// Analyze classifies the named locals of loop l in function f. The graph
// and forest must be the ones l came from.
func Analyze(f *tir.Function, l *cfg.Loop, g *cfg.Graph, forest *cfg.Forest) *LoopScalars {
	res := &LoopScalars{Classes: map[int]Class{}}

	loads := map[int]int{}         // slot -> LdLoc count in loop
	stores := map[int]int{}        // slot -> StLoc count in loop
	selfOp := map[int]int{}        // stores of the form s = s OP x
	indOp := map[int]int{}         // stores of the form s = s ± const
	selfLoads := map[int]int{}     // LdLoc instructions feeding a self-update
	storeBlocks := map[int][]int{} // slot -> blocks containing its stores

	for bi := range f.Blocks {
		if !l.Blocks[bi] {
			continue
		}
		analyzeBlock(bi, f.Blocks[bi].Instrs, loads, stores, selfOp, indOp, selfLoads, storeBlocks)
	}

	seen := map[int]bool{}
	for s := range loads {
		seen[s] = true
	}
	for s := range stores {
		seen[s] = true
	}
	for s := range seen {
		res.Accessed = append(res.Accessed, s)
	}
	sort.Ints(res.Accessed)

	idom := g.Dominators()
	oncePerIter := func(slot int) bool {
		for _, sb := range storeBlocks[slot] {
			if inNestedLoop(sb, l, forest) {
				return false
			}
			for _, latch := range l.Latches {
				if !cfg.Dominates(idom, sb, latch) {
					return false
				}
			}
		}
		return true
	}

	for _, s := range res.Accessed {
		cls := ClassPlain
		switch {
		case stores[s] == 0:
			cls = ClassInvariant
		case indOp[s] == stores[s] && oncePerIter(s):
			cls = ClassInductor
		case selfOp[s] == stores[s] && loads[s] == selfLoads[s] && loads[s] == stores[s]:
			cls = ClassReduction
		case definedBeforeUsed(f, l, g, s):
			cls = ClassPrivate
		}
		res.Classes[s] = cls
		if cls == ClassPlain {
			res.Annotated = append(res.Annotated, s)
		}
	}

	res.Reject = screen(f, l, res)
	return res
}

// definedBeforeUsed reports whether every load of slot inside the loop is
// preceded, on every path from the loop header, by a store of the slot in
// the same iteration — the classic privatization condition ("local
// variable initializers are communicated to each thread"). It is a
// must-define forward dataflow over the loop body with the header entry
// forced undefined, so a value can never be observed across an iteration
// boundary.
func definedBeforeUsed(f *tir.Function, l *cfg.Loop, g *cfg.Graph, slot int) bool {
	// Per-block facts: does the block have a load before any store of the
	// slot (upward-exposed use), and does it store the slot at all?
	upUse := map[int]bool{}
	hasStore := map[int]bool{}
	for b := range l.Blocks {
		seenStore := false
		for i := range f.Blocks[b].Instrs {
			in := &f.Blocks[b].Instrs[i]
			if in.Op == tir.OpStLoc && in.Slot == slot {
				hasStore[b] = true
				seenStore = true
			}
			if in.Op == tir.OpLdLoc && in.Slot == slot && !seenStore {
				upUse[b] = true
			}
		}
	}
	// Optimistic must-define iteration: defIn[b] true unless proven
	// otherwise; the header entry is undefined (iteration start).
	defIn := map[int]bool{}
	for b := range l.Blocks {
		defIn[b] = b != l.Header
	}
	changed := true
	for changed {
		changed = false
		for b := range l.Blocks {
			in := defIn[b]
			if b != l.Header {
				in = true
				for _, p := range g.Preds[b] {
					if !l.Blocks[p] {
						continue
					}
					if !(defIn[p] || hasStore[p]) {
						in = false
						break
					}
				}
			} else {
				in = false
			}
			if in != defIn[b] {
				defIn[b] = in
				changed = true
			}
		}
	}
	for b := range l.Blocks {
		if upUse[b] && !defIn[b] {
			return false
		}
	}
	// A slot never loaded in the loop is trivially private, but that case
	// is classified earlier; require at least one store so ClassPrivate
	// only applies to written variables.
	return len(hasStore) > 0
}

// inNestedLoop reports whether block b belongs to a loop strictly nested
// inside l.
func inNestedLoop(b int, l *cfg.Loop, forest *cfg.Forest) bool {
	for _, m := range forest.Loops {
		if m == l || !m.Blocks[b] {
			continue
		}
		if l.Blocks[m.Header] {
			return true
		}
	}
	return false
}

// analyzeBlock performs a single pass over one block, tracking, per
// register, whether it currently holds the value of a LdLoc of some slot
// or a constant, in order to pattern-match self-updates.
func analyzeBlock(bi int, instrs []tir.Instr, loads, stores, selfOp, indOp, selfLoads map[int]int, storeBlocks map[int][]int) {
	type def struct {
		fromSlot int // -1 if not a direct LdLoc value
		isConst  bool
		ldIdx    int // instruction index of the LdLoc
	}
	defs := map[tir.Reg]def{}
	usedBySelf := map[int]bool{}

	// chains[reg] records "LdLoc(slot) OP x" results.
	type chain struct {
		slot  int
		ind   bool // OP is ± with a constant other operand
		ldIdx int
	}
	chains := map[tir.Reg]chain{}

	for idx := range instrs {
		in := &instrs[idx]
		switch in.Op {
		case tir.OpLdLoc:
			loads[in.Slot]++
			defs[in.Dst] = def{fromSlot: in.Slot, ldIdx: idx}
			delete(chains, in.Dst)
		case tir.OpConstI, tir.OpConstF:
			defs[in.Dst] = def{fromSlot: -1, isConst: true}
			delete(chains, in.Dst)
		case tir.OpAdd, tir.OpSub, tir.OpFAdd, tir.OpFSub, tir.OpMul, tir.OpFMul:
			a, aok := defs[in.A]
			b, bok := defs[in.B]
			c := chain{slot: -1}
			addSub := in.Op == tir.OpAdd || in.Op == tir.OpSub || in.Op == tir.OpFAdd || in.Op == tir.OpFSub
			if aok && a.fromSlot >= 0 {
				c = chain{slot: a.fromSlot, ind: addSub && bok && b.isConst, ldIdx: a.ldIdx}
			} else if bok && b.fromSlot >= 0 && in.Op != tir.OpSub && in.Op != tir.OpFSub {
				c = chain{slot: b.fromSlot, ind: addSub && aok && a.isConst, ldIdx: b.ldIdx}
			}
			if c.slot >= 0 {
				chains[in.Dst] = c
			} else {
				delete(chains, in.Dst)
			}
			defs[in.Dst] = def{fromSlot: -1}
		case tir.OpStLoc:
			stores[in.Slot]++
			storeBlocks[in.Slot] = append(storeBlocks[in.Slot], bi)
			if c, ok := chains[in.A]; ok && c.slot == in.Slot {
				selfOp[in.Slot]++
				if c.ind {
					indOp[in.Slot]++
				}
				if !usedBySelf[c.ldIdx] {
					usedBySelf[c.ldIdx] = true
					selfLoads[in.Slot]++
				}
			}
			for r, d := range defs {
				if d.fromSlot == in.Slot {
					delete(defs, r)
				}
			}
		default:
			if writesDst(in.Op) {
				defs[in.Dst] = def{fromSlot: -1}
				delete(chains, in.Dst)
			}
		}
	}
}

// writesDst reports whether op defines its Dst register (instructions like
// Br, Store or the annotations leave Dst zero-valued but meaningless).
func writesDst(op tir.Op) bool {
	switch op {
	case tir.OpStore, tir.OpStLoc, tir.OpBr, tir.OpBrIf, tir.OpRet, tir.OpPrint,
		tir.OpNop, tir.OpSLoop, tir.OpELoop, tir.OpEOI, tir.OpLWL, tir.OpSWL, tir.OpReadStats:
		return false
	case tir.OpCall:
		return true // Dst may be NoReg; the map key -1 is harmless
	default:
		return true
	}
}

// screen applies the obvious-serialization rejection: a plain scalar that
// is loaded at the very start of the loop header and stored in every
// latch block (after its last load there) forms an end-of-loop-store ->
// start-of-loop-load recurrence whose dependency arc spans the whole
// iteration, eliminating any speedup.
func screen(f *tir.Function, l *cfg.Loop, res *LoopScalars) string {
	header := f.Blocks[l.Header].Instrs
	for _, slot := range res.Annotated {
		if !storedInLoop(f, l, slot) {
			continue
		}
		headLoad := false
		for i := range header {
			if header[i].Op == tir.OpStLoc && header[i].Slot == slot {
				break
			}
			if header[i].Op == tir.OpLdLoc && header[i].Slot == slot {
				headLoad = true
				break
			}
		}
		if !headLoad {
			continue
		}
		tail := true
		for _, latch := range l.Latches {
			instrs := f.Blocks[latch].Instrs
			lastStore, lastLoad := -1, -1
			for i := range instrs {
				if instrs[i].Op == tir.OpStLoc && instrs[i].Slot == slot {
					lastStore = i
				}
				if instrs[i].Op == tir.OpLdLoc && instrs[i].Slot == slot {
					lastLoad = i
				}
			}
			if lastStore == -1 || lastStore < lastLoad {
				tail = false
				break
			}
		}
		if tail {
			return "serial scalar recurrence on " + f.Locals[slot].Name
		}
	}
	return ""
}

func storedInLoop(f *tir.Function, l *cfg.Loop, slot int) bool {
	for bi := range f.Blocks {
		if !l.Blocks[bi] {
			continue
		}
		for i := range f.Blocks[bi].Instrs {
			in := &f.Blocks[bi].Instrs[i]
			if in.Op == tir.OpStLoc && in.Slot == slot {
				return true
			}
		}
	}
	return false
}
