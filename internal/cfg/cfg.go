// Package cfg builds control-flow graphs over TIR functions and finds
// natural loops, which are the paper's candidate speculative thread loops
// (section 4.1: "The compiler chooses potential STLs by examining a
// method's control-flow graph to identify all natural loops").
package cfg

import "jrpm/internal/tir"

// Graph is the CFG of one function. Block indices match f.Blocks.
type Graph struct {
	F     *tir.Function
	Succs [][]int
	Preds [][]int
	// RPO is a reverse postorder of the reachable blocks.
	RPO []int
	// RPONum maps block index to its position in RPO (-1 if unreachable).
	RPONum []int
}

// Build computes the CFG for f.
func Build(f *tir.Function) *Graph {
	n := len(f.Blocks)
	g := &Graph{
		F:      f,
		Succs:  make([][]int, n),
		Preds:  make([][]int, n),
		RPONum: make([]int, n),
	}
	for i := range f.Blocks {
		g.Succs[i] = f.Blocks[i].Targets
		for _, t := range f.Blocks[i].Targets {
			g.Preds[t] = append(g.Preds[t], i)
		}
	}
	// Postorder DFS from the entry.
	visited := make([]bool, n)
	var post []int
	var dfs func(int)
	dfs = func(b int) {
		visited[b] = true
		for _, s := range g.Succs[b] {
			if !visited[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	if n > 0 {
		dfs(0)
	}
	g.RPO = make([]int, len(post))
	for i := range g.RPONum {
		g.RPONum[i] = -1
	}
	for i, b := range post {
		idx := len(post) - 1 - i
		g.RPO[idx] = b
		g.RPONum[b] = idx
	}
	return g
}

// Dominators computes the immediate dominator of every reachable block
// using the Cooper-Harvey-Kennedy iterative algorithm. idom[entry] = entry;
// unreachable blocks get -1.
func (g *Graph) Dominators() []int {
	n := len(g.F.Blocks)
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	if n == 0 {
		return idom
	}
	idom[0] = 0
	intersect := func(a, b int) int {
		for a != b {
			for g.RPONum[a] > g.RPONum[b] {
				a = idom[a]
			}
			for g.RPONum[b] > g.RPONum[a] {
				b = idom[b]
			}
		}
		return a
	}
	changed := true
	for changed {
		changed = false
		for _, b := range g.RPO {
			if b == 0 {
				continue
			}
			newIdom := -1
			for _, p := range g.Preds[b] {
				if idom[p] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != -1 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether a dominates b given an idom array.
func Dominates(idom []int, a, b int) bool {
	if idom[b] == -1 {
		return false
	}
	for {
		if b == a {
			return true
		}
		if b == 0 {
			return false
		}
		b = idom[b]
	}
}

// ExitEdge is a CFG edge leaving a loop.
type ExitEdge struct {
	From, To int
}

// Loop is one natural loop. All back edges sharing a header are merged
// into a single loop, as is conventional.
type Loop struct {
	Header   int
	Blocks   map[int]bool
	Latches  []int      // back-edge sources, ascending
	Exits    []ExitEdge // edges from inside to outside
	Parent   *Loop
	Children []*Loop
	Depth    int // nesting depth within the function, outermost = 1
	Line     int // source line of the header's first instruction
}

// Contains reports whether the loop body includes block b.
func (l *Loop) Contains(b int) bool { return l.Blocks[b] }

// Forest is the loop-nesting forest of one function.
type Forest struct {
	Roots []*Loop
	// Loops holds every loop, outer loops before the loops they contain.
	Loops    []*Loop
	ByHeader map[int]*Loop
}

// NaturalLoops finds all natural loops of g and organizes them into a
// nesting forest.
func (g *Graph) NaturalLoops() *Forest {
	idom := g.Dominators()
	byHeader := map[int]*Loop{}
	// Find back edges u -> h where h dominates u.
	for _, u := range g.RPO {
		for _, h := range g.Succs[u] {
			if !Dominates(idom, h, u) {
				continue
			}
			l := byHeader[h]
			if l == nil {
				line := 0
				if len(g.F.Blocks[h].Instrs) > 0 {
					line = g.F.Blocks[h].Instrs[0].Line
				}
				l = &Loop{Header: h, Blocks: map[int]bool{h: true}, Line: line}
				byHeader[h] = l
			}
			l.Latches = append(l.Latches, u)
			// Loop body: everything that reaches u without passing h.
			if !l.Blocks[u] {
				l.Blocks[u] = true
			}
			stack := []int{u}
			for len(stack) > 0 {
				b := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if b == h {
					continue
				}
				for _, p := range g.Preds[b] {
					if !l.Blocks[p] {
						l.Blocks[p] = true
						stack = append(stack, p)
					}
				}
			}
		}
	}
	f := &Forest{ByHeader: byHeader}
	for _, b := range g.RPO {
		if l, ok := byHeader[b]; ok {
			f.Loops = append(f.Loops, l)
		}
	}
	// Nesting: parent = the smallest other loop containing this header.
	for _, l := range f.Loops {
		var best *Loop
		for _, m := range f.Loops {
			if m == l || !m.Blocks[l.Header] {
				continue
			}
			if best == nil || len(m.Blocks) < len(best.Blocks) {
				best = m
			}
		}
		l.Parent = best
		if best != nil {
			best.Children = append(best.Children, l)
		} else {
			f.Roots = append(f.Roots, l)
		}
	}
	var setDepth func(l *Loop, d int)
	setDepth = func(l *Loop, d int) {
		l.Depth = d
		for _, c := range l.Children {
			setDepth(c, d+1)
		}
	}
	for _, r := range f.Roots {
		setDepth(r, 1)
	}
	// Exit edges.
	for _, l := range f.Loops {
		for b := range l.Blocks {
			for _, s := range g.Succs[b] {
				if !l.Blocks[s] {
					l.Exits = append(l.Exits, ExitEdge{From: b, To: s})
				}
			}
		}
	}
	return f
}

// MaxDepth returns the deepest static nesting level in the forest.
func (f *Forest) MaxDepth() int {
	max := 0
	for _, l := range f.Loops {
		if l.Depth > max {
			max = l.Depth
		}
	}
	return max
}
