package cfg_test

import (
	"testing"
	"testing/quick"

	"jrpm/internal/cfg"
	"jrpm/internal/lang"
	"jrpm/internal/tir"
)

// buildFunc makes a synthetic function with the given successor lists.
func buildFunc(succs [][]int) *tir.Function {
	f := &tir.Function{Name: "synthetic", NumRegs: 1}
	for _, s := range succs {
		var b tir.Block
		switch len(s) {
		case 0:
			b.Instrs = []tir.Instr{{Op: tir.OpRet}}
		case 1:
			b.Instrs = []tir.Instr{{Op: tir.OpBr}}
			b.Targets = []int{s[0]}
		default:
			b.Instrs = []tir.Instr{{Op: tir.OpBrIf, A: 0}}
			b.Targets = []int{s[0], s[1]}
		}
		f.Blocks = append(f.Blocks, b)
	}
	return f
}

// bruteDominates computes dominance by definition: a dominates b iff every
// path from the entry to b passes through a, i.e. b is unreachable when a
// is removed.
func bruteDominates(succs [][]int, a, b int) bool {
	if a == b {
		return true
	}
	seen := make([]bool, len(succs))
	var stack []int
	if a != 0 {
		stack = append(stack, 0)
		seen[0] = true
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range succs[n] {
			if s == a || seen[s] {
				continue
			}
			seen[s] = true
			stack = append(stack, s)
		}
	}
	// b reachable while avoiding a means a does not dominate b; if b is
	// unreachable even with a present, dominance is vacuous (handled by
	// callers only asking about reachable b).
	return !seen[b]
}

func reachable(succs [][]int) []bool {
	seen := make([]bool, len(succs))
	seen[0] = true
	stack := []int{0}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range succs[n] {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// TestDominatorsMatchBruteForce is a property test over random CFGs.
func TestDominatorsMatchBruteForce(t *testing.T) {
	f := func(seed uint32, nRaw uint8) bool {
		n := int(nRaw%10) + 2
		rnd := seed
		next := func(m int) int {
			rnd = rnd*1664525 + 1013904223
			return int(rnd>>8) % m
		}
		succs := make([][]int, n)
		for i := range succs {
			switch next(3) {
			case 0:
				succs[i] = nil // ret
			case 1:
				succs[i] = []int{next(n)}
			default:
				succs[i] = []int{next(n), next(n)}
			}
		}
		// Entry must not be a dead end for interesting graphs.
		if len(succs[0]) == 0 && n > 1 {
			succs[0] = []int{1 % n}
		}
		g := cfg.Build(buildFunc(succs))
		idom := g.Dominators()
		reach := reachable(succs)
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if !reach[a] || !reach[b] {
					continue
				}
				got := cfg.Dominates(idom, a, b)
				want := bruteDominates(succs, a, b)
				if got != want {
					t.Logf("graph %v: Dominates(%d,%d) = %v, brute = %v", succs, a, b, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// compile is a helper producing TIR from JR source.
func compile(t *testing.T, src string) *tir.Program {
	t.Helper()
	prog, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestNaturalLoopsNest verifies loop discovery and nesting on a compiled
// triple nest.
func TestNaturalLoopsNest(t *testing.T) {
	prog := compile(t, `
global a: int[];
func main() {
	var i: int = 0;
	while (i < 10) {
		var j: int = 0;
		while (j < 10) {
			var k: int = 0;
			while (k < 10) {
				a[0] = a[0] + 1;
				k++;
			}
			j++;
		}
		i++;
	}
}`)
	f, _, _ := prog.Lookup("main")
	g := cfg.Build(f)
	forest := g.NaturalLoops()
	if len(forest.Loops) != 3 {
		t.Fatalf("found %d loops, want 3", len(forest.Loops))
	}
	if len(forest.Roots) != 1 {
		t.Fatalf("found %d root loops, want 1", len(forest.Roots))
	}
	if forest.MaxDepth() != 3 {
		t.Fatalf("max depth %d, want 3", forest.MaxDepth())
	}
	root := forest.Roots[0]
	if len(root.Children) != 1 || len(root.Children[0].Children) != 1 {
		t.Fatal("nesting chain broken")
	}
	// Depths outermost-in.
	if root.Depth != 1 || root.Children[0].Depth != 2 || root.Children[0].Children[0].Depth != 3 {
		t.Fatalf("depths = %d/%d/%d", root.Depth, root.Children[0].Depth, root.Children[0].Children[0].Depth)
	}
	// Inclusion: inner blocks are subsets of outer blocks.
	inner := root.Children[0].Children[0]
	for b := range inner.Blocks {
		if !root.Blocks[b] {
			t.Fatalf("inner block %d not contained in the outer loop", b)
		}
	}
}

// TestLoopLatchesAndExits checks back edges and exit edges on do-while and
// multi-exit loops.
func TestLoopLatchesAndExits(t *testing.T) {
	prog := compile(t, `
global a: int[];
func main() {
	var i: int = 0;
	do {
		i++;
		if (a[i % 8] > 100) { break; }
	} while (i < 50);
}`)
	f, _, _ := prog.Lookup("main")
	forest := cfg.Build(f).NaturalLoops()
	if len(forest.Loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(forest.Loops))
	}
	l := forest.Loops[0]
	if len(l.Latches) != 1 {
		t.Fatalf("latches = %v, want exactly 1", l.Latches)
	}
	if len(l.Exits) != 2 {
		t.Fatalf("exits = %v, want 2 (break and condition)", l.Exits)
	}
	for _, e := range l.Exits {
		if !l.Blocks[e.From] || l.Blocks[e.To] {
			t.Fatalf("exit edge %v not from inside to outside", e)
		}
	}
}

// TestSiblingLoops: two sequential loops must not nest.
func TestSiblingLoops(t *testing.T) {
	prog := compile(t, `
global a: int[];
func main() {
	var i: int = 0;
	while (i < 10) { a[0] = a[0] + 1; i++; }
	var j: int = 0;
	while (j < 10) { a[1] = a[1] + 1; j++; }
}`)
	f, _, _ := prog.Lookup("main")
	forest := cfg.Build(f).NaturalLoops()
	if len(forest.Loops) != 2 || len(forest.Roots) != 2 {
		t.Fatalf("loops=%d roots=%d, want 2/2", len(forest.Loops), len(forest.Roots))
	}
}

// TestRPOCoversReachable: every reachable block appears exactly once in
// the reverse postorder.
func TestRPOCoversReachable(t *testing.T) {
	prog := compile(t, `
func f(x: int): int {
	if (x > 0) { return x; }
	return -x;
}
func main() { f(3); }`)
	f, _, _ := prog.Lookup("f")
	g := cfg.Build(f)
	seen := map[int]bool{}
	for _, b := range g.RPO {
		if seen[b] {
			t.Fatalf("block %d appears twice in RPO", b)
		}
		seen[b] = true
	}
	if len(g.RPO) != len(f.Blocks) {
		t.Fatalf("RPO has %d blocks, function has %d (codegen prunes unreachable)", len(g.RPO), len(f.Blocks))
	}
	// Entry first.
	if g.RPO[0] != 0 {
		t.Fatalf("RPO starts at %d, want entry 0", g.RPO[0])
	}
}
