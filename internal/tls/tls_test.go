package tls_test

import (
	"testing"
	"testing/quick"

	"jrpm/internal/hydra"
	"jrpm/internal/tir"
	"jrpm/internal/tls"
	"jrpm/internal/vmsim"
)

func cfg() hydra.Config { return hydra.DefaultConfig() }

// entry builds one Entry of n identical iterations.
func entry(n int, iterLen int64, acc func(k int) []tls.Access) *tls.Entry {
	e := &tls.Entry{Loop: 0, SeqCycles: int64(n) * iterLen}
	for k := 0; k < n; k++ {
		it := tls.Iter{Len: iterLen}
		if acc != nil {
			it.Acc = acc(k)
		}
		e.Iters = append(e.Iters, it)
	}
	return e
}

// TestIndependentIterationsReachCPUBound: no cross-iteration accesses ->
// speedup approaches the CPU count.
func TestIndependentIterationsReachCPUBound(t *testing.T) {
	e := entry(64, 1000, nil)
	r := tls.Simulate([]*tls.Entry{e}, cfg())[0]
	if r.Violations != 0 || r.CommStalls != 0 || r.OverflowStalls != 0 {
		t.Fatalf("unexpected hazards: %+v", r)
	}
	if r.Speedup < 3.5 || r.Speedup > 4.0 {
		t.Fatalf("speedup = %.2f, want ~3.9", r.Speedup)
	}
}

// TestSerialChainSerializes: every iteration reads what the previous one
// wrote at its very end: no useful overlap survives.
func TestSerialChainSerializes(t *testing.T) {
	e := entry(64, 1000, func(k int) []tls.Access {
		return []tls.Access{
			{Rel: 5, Addr: 0x1000, Kind: tls.Load, PC: 1},
			{Rel: 995, Addr: 0x1000, Kind: tls.Store, PC: 2},
		}
	})
	r := tls.Simulate([]*tls.Entry{e}, cfg())[0]
	if r.Speedup > 1.15 {
		t.Fatalf("end-to-start chain got %.2fx, want ~1.0", r.Speedup)
	}
}

// TestViolationLearningConvertsToSync: the recompiler synchronizes a load
// PC after two violations; later threads stall instead of restarting.
func TestViolationLearningConvertsToSync(t *testing.T) {
	e := entry(64, 1000, func(k int) []tls.Access {
		return []tls.Access{
			{Rel: 5, Addr: 0x1000, Kind: tls.Load, PC: 42},
			{Rel: 500, Addr: 0x1000, Kind: tls.Store, PC: 43},
		}
	})
	r := tls.Simulate([]*tls.Entry{e}, cfg())[0]
	if r.Violations == 0 {
		t.Fatal("expected initial violations before learning")
	}
	if r.Violations > 6 {
		t.Fatalf("violations = %d: learning did not kick in", r.Violations)
	}
	if r.CommStalls == 0 {
		t.Fatal("synchronized loads should report communication stalls")
	}
	// Store at rel 500, load at rel 5: threads can overlap halfway.
	if r.Speedup < 1.5 || r.Speedup > 2.5 {
		t.Fatalf("speedup = %.2f, want ~2 (half-thread pipelining)", r.Speedup)
	}
}

// TestMidLoopDependencePipelines: a store->load distance of 3/4 thread
// size permits near-full overlap (the paper's 3/4 rule, executed).
func TestMidLoopDependencePipelines(t *testing.T) {
	e := entry(64, 1000, func(k int) []tls.Access {
		return []tls.Access{
			{Rel: 900, Addr: 0x1000, Kind: tls.Load, PC: 1},
			{Rel: 150, Addr: 0x1000, Kind: tls.Store, PC: 2},
		}
	})
	// Load late (rel 900), store early (rel 150): arc length ~250 + T.
	r := tls.Simulate([]*tls.Entry{e}, cfg())[0]
	if r.Speedup < 3.0 {
		t.Fatalf("long-arc dependence should pipeline, got %.2fx", r.Speedup)
	}
}

// TestOwnStoreForwards: a load of a word this thread already wrote never
// waits on other threads.
func TestOwnStoreForwards(t *testing.T) {
	e := entry(32, 1000, func(k int) []tls.Access {
		return []tls.Access{
			{Rel: 10, Addr: 0x2000, Kind: tls.Store, PC: 1},
			{Rel: 20, Addr: 0x2000, Kind: tls.Load, PC: 2},
			{Rel: 900, Addr: 0x2000, Kind: tls.Store, PC: 3},
		}
	})
	r := tls.Simulate([]*tls.Entry{e}, cfg())[0]
	if r.Violations != 0 || r.CommStalls != 0 {
		t.Fatalf("own-store forwarding failed: %+v", r)
	}
	if r.Speedup < 3.5 {
		t.Fatalf("speedup = %.2f", r.Speedup)
	}
}

// TestWAWAndWARAreFree: writes to the same location by different threads
// cost nothing (handled by the write buffers).
func TestWAWAndWARAreFree(t *testing.T) {
	e := entry(32, 1000, func(k int) []tls.Access {
		return []tls.Access{
			{Rel: 500, Addr: 0x3000, Kind: tls.Store, PC: 1},
		}
	})
	r := tls.Simulate([]*tls.Entry{e}, cfg())[0]
	if r.Violations != 0 || r.CommStalls != 0 || r.Speedup < 3.5 {
		t.Fatalf("WAW hazards exacted a cost: %+v", r)
	}
}

// TestLocalSyncNeverViolates: globalized locals wait, they do not restart.
func TestLocalSyncNeverViolates(t *testing.T) {
	e := entry(32, 1000, func(k int) []tls.Access {
		return []tls.Access{
			{Rel: 5, Addr: 1<<40 | 7, Kind: tls.LocalLoad, PC: 1},
			{Rel: 800, Addr: 1<<40 | 7, Kind: tls.LocalStore, PC: 2},
		}
	})
	r := tls.Simulate([]*tls.Entry{e}, cfg())[0]
	if r.Violations != 0 {
		t.Fatalf("local dependency violated instead of synchronizing: %+v", r)
	}
	if r.CommStalls == 0 {
		t.Fatal("expected synchronization stalls")
	}
	if r.Speedup > 1.5 {
		t.Fatalf("near-end-to-start local chain got %.2fx", r.Speedup)
	}
}

// TestBufferOverflowStalls: a thread whose write set exceeds the store
// buffer stalls until it becomes the head thread.
func TestBufferOverflowStalls(t *testing.T) {
	c := cfg()
	c.Buffers.StoreLines = 4
	e := entry(16, 1000, func(k int) []tls.Access {
		var acc []tls.Access
		for i := 0; i < 6; i++ { // 6 distinct lines > 4-line limit
			acc = append(acc, tls.Access{
				Rel: int64(10 + i), Addr: uint64(0x4000 + i*hydra.LineSize), Kind: tls.Store, PC: i,
			})
		}
		return acc
	})
	r := tls.Simulate([]*tls.Entry{e}, c)[0]
	if r.OverflowStalls == 0 {
		t.Fatal("expected overflow stalls")
	}
	if r.Speedup > 1.5 {
		t.Fatalf("stall-until-head should serialize, got %.2fx", r.Speedup)
	}

	// Same run with ample buffers parallelizes.
	r2 := tls.Simulate([]*tls.Entry{entry(16, 1000, func(k int) []tls.Access {
		var acc []tls.Access
		for i := 0; i < 6; i++ {
			acc = append(acc, tls.Access{
				Rel: int64(10 + i), Addr: uint64(0x4000 + i*hydra.LineSize), Kind: tls.Store, PC: i,
			})
		}
		return acc
	})}, cfg())[0]
	if r2.OverflowStalls != 0 || r2.Speedup < 3.0 {
		t.Fatalf("ample buffers still stalled: %+v", r2)
	}
}

// TestOverheadsCharged: startup + shutdown + per-thread eoi appear in the
// simulated time.
func TestOverheadsCharged(t *testing.T) {
	c := cfg()
	e := entry(1, 1000, nil)
	r := tls.Simulate([]*tls.Entry{e}, c)[0]
	want := c.Overheads.LoopStartup + 1000 + c.Overheads.EndOfIter + c.Overheads.LoopShutdown
	if r.TLSCycles != want {
		t.Fatalf("single-thread TLS time = %d, want %d", r.TLSCycles, want)
	}
}

// TestAggregationAcrossEntries: results accumulate per loop.
func TestAggregationAcrossEntries(t *testing.T) {
	e1 := entry(8, 500, nil)
	e2 := entry(8, 500, nil)
	r := tls.Simulate([]*tls.Entry{e1, e2}, cfg())[0]
	if r.Entries != 2 || r.Threads != 16 || r.SeqCycles != 8000 {
		t.Fatalf("aggregate = %+v", r)
	}
}

// --- Recorder --------------------------------------------------------------

func recorderProg() *tir.Program {
	p := &tir.Program{}
	p.Loops = []tir.LoopInfo{
		{ID: 0, Candidate: true, AnnLocals: []int{3}},
		{ID: 1, Candidate: true, AnnLocals: []int{5}},
	}
	return p
}

// TestRecorderCapturesIterations: boundaries, lengths and accesses.
func TestRecorderCapturesIterations(t *testing.T) {
	rec := tls.NewRecorder(recorderProg(), []int{0})
	rec.LoopStart(100, 0, 1, 9)
	rec.HeapLoad(110, 0x1000, 1)
	rec.LoopIter(150, 0)
	rec.HeapStore(160, 0x2000, 2)
	rec.LoopEnd(230, 0)

	if len(rec.Entries) != 1 {
		t.Fatalf("entries = %d", len(rec.Entries))
	}
	e := rec.Entries[0]
	if len(e.Iters) != 2 {
		t.Fatalf("iters = %d, want 2", len(e.Iters))
	}
	if e.Iters[0].Len != 50 || e.Iters[1].Len != 80 {
		t.Fatalf("iter lengths = %d/%d, want 50/80", e.Iters[0].Len, e.Iters[1].Len)
	}
	if e.SeqCycles != 130 {
		t.Fatalf("entry cycles = %d, want 130", e.SeqCycles)
	}
	if len(e.Iters[0].Acc) != 1 || e.Iters[0].Acc[0].Rel != 10 || e.Iters[0].Acc[0].Kind != tls.Load {
		t.Fatalf("iter 0 accesses = %+v", e.Iters[0].Acc)
	}
	if len(e.Iters[1].Acc) != 1 || e.Iters[1].Acc[0].Rel != 10 || e.Iters[1].Acc[0].Kind != tls.Store {
		t.Fatalf("iter 1 accesses = %+v", e.Iters[1].Acc)
	}
}

// TestRecorderFiltersLocals: only the selected loop's globalized slots in
// its own frame are recorded.
func TestRecorderFiltersLocals(t *testing.T) {
	rec := tls.NewRecorder(recorderProg(), []int{0})
	rec.LoopStart(0, 0, 1, 9)
	rec.LocalLoad(10, vmsim.SlotID{Frame: 9, Slot: 3}, 1)  // allowed
	rec.LocalLoad(20, vmsim.SlotID{Frame: 9, Slot: 5}, 2)  // other loop's slot
	rec.LocalLoad(30, vmsim.SlotID{Frame: 8, Slot: 3}, 3)  // wrong frame
	rec.LocalStore(40, vmsim.SlotID{Frame: 9, Slot: 3}, 4) // allowed
	rec.LoopEnd(50, 0)

	acc := rec.Entries[0].Iters[0].Acc
	if len(acc) != 2 {
		t.Fatalf("recorded %d local accesses, want 2: %+v", len(acc), acc)
	}
}

// TestRecorderIgnoresUnselectedLoops: events of other loops pass through
// as plain accesses of the active recording.
func TestRecorderIgnoresUnselectedLoops(t *testing.T) {
	rec := tls.NewRecorder(recorderProg(), []int{0})
	rec.LoopStart(0, 0, 1, 9)
	rec.LoopStart(10, 1, 1, 9) // nested unselected loop
	rec.HeapLoad(20, 0x1000, 1)
	rec.LoopIter(30, 1) // must not split iteration of loop 0
	rec.LoopEnd(40, 1)
	rec.LoopEnd(50, 0)
	e := rec.Entries[0]
	if len(e.Iters) != 1 {
		t.Fatalf("nested loop events split the recording: %d iters", len(e.Iters))
	}
	if len(e.Iters[0].Acc) != 1 {
		t.Fatalf("heap access inside nested loop lost")
	}
}

// TestRecorderOutsideLoopsIgnoresEvents: accesses outside a selected loop
// are not recorded.
func TestRecorderOutsideLoopsIgnoresEvents(t *testing.T) {
	rec := tls.NewRecorder(recorderProg(), []int{0})
	rec.HeapLoad(5, 0x1000, 1)
	rec.LoopStart(10, 0, 1, 9)
	rec.LoopEnd(20, 0)
	rec.HeapStore(30, 0x1000, 2)
	if len(rec.Entries) != 1 || len(rec.Entries[0].Iters[0].Acc) != 0 {
		t.Fatalf("out-of-loop events recorded: %+v", rec.Entries)
	}
}

// TestSimulationInvariants is a property test over random traces: for any
// entry, the simulated time must lie between perfect parallel execution
// (seq/CPUs) and serial execution plus all fixed overheads and possible
// restart work.
func TestSimulationInvariants(t *testing.T) {
	type accSpec struct {
		Rel  uint8
		Addr uint8
		Kind uint8
	}
	f := func(nIterRaw uint8, lenRaw uint8, specs []accSpec) bool {
		c := cfg()
		nIter := int(nIterRaw%20) + 1
		iterLen := int64(lenRaw%200) + 20
		e := &tls.Entry{Loop: 0, SeqCycles: int64(nIter) * iterLen}
		for k := 0; k < nIter; k++ {
			it := tls.Iter{Len: iterLen}
			for _, sp := range specs {
				rel := int64(sp.Rel) % iterLen
				kind := tls.AccessKind(sp.Kind % 2) // loads and stores only
				it.Acc = append(it.Acc, tls.Access{
					Rel:  rel,
					Addr: uint64(sp.Addr%32) * 4,
					Kind: kind,
					PC:   int(sp.Addr),
				})
			}
			e.Iters = append(e.Iters, it)
		}
		r := tls.Simulate([]*tls.Entry{e}, c)[0]

		lower := e.SeqCycles / int64(c.CPUs)
		if r.TLSCycles < lower {
			t.Logf("TLS %d below parallel bound %d", r.TLSCycles, lower)
			return false
		}
		// Upper bound: full serialization plus overheads plus, per thread,
		// at most one full restart per distinct predecessor-store access
		// plus communication waits (each bounded by iterLen + comm).
		perThreadWorst := iterLen + c.Overheads.EndOfIter +
			int64(len(specs))*(iterLen+c.Overheads.StoreLoadComm+c.Overheads.Violation)
		upper := c.Overheads.LoopStartup + c.Overheads.LoopShutdown +
			int64(nIter)*perThreadWorst
		if r.TLSCycles > upper {
			t.Logf("TLS %d above serial bound %d", r.TLSCycles, upper)
			return false
		}
		if r.Speedup <= 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestMoreCPUsNeverSlower: the same trace on a bigger machine cannot get
// slower.
func TestMoreCPUsNeverSlower(t *testing.T) {
	e := func() *tls.Entry {
		return entry(40, 500, func(k int) []tls.Access {
			return []tls.Access{
				{Rel: 100, Addr: uint64(k%8) * 64, Kind: tls.Store, PC: 1},
				{Rel: 50, Addr: uint64((k+1)%8) * 64, Kind: tls.Load, PC: 2},
			}
		})
	}
	c2 := cfg()
	c2.CPUs = 2
	c8 := cfg()
	c8.CPUs = 8
	r2 := tls.Simulate([]*tls.Entry{e()}, c2)[0]
	r8 := tls.Simulate([]*tls.Entry{e()}, c8)[0]
	if r8.TLSCycles > r2.TLSCycles {
		t.Fatalf("8 CPUs (%d cycles) slower than 2 CPUs (%d cycles)", r8.TLSCycles, r2.TLSCycles)
	}
}
