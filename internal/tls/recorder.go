package tls

import (
	"jrpm/internal/tir"
	"jrpm/internal/vmsim"
)

// Recorder is a VM listener that captures per-iteration memory traces for
// a set of selected loops, feeding the TLS timing simulation. The selected
// set is exclusive (no loop is an ancestor or descendant of another), so
// at most one recording is active at a time; if a selected loop is entered
// while another recording is active (possible only through a rare
// secondary dynamic parent), its events simply fold into the active
// recording, matching the hardware's one-decomposition-at-a-time rule.
//
// Local-variable events are filtered to the selected loop's own globalized
// variables (its AnnLocals, in its activation frame): those are the
// variables the recompiler synchronizes for this decomposition. Events
// from nested loops' annotations describe other decompositions — their
// variables are private or inductive for the selected loop — and callee
// locals live in per-call frames; both must not serialize the simulated
// threads.
type Recorder struct {
	Selected map[int]bool
	Entries  []*Entry

	prog        *tir.Program
	active      *Entry
	activeLoop  int
	activeFrame uint64
	allowed     map[int]bool // AnnLocals of the active selected loop
	entryStart  int64
	iterStart   int64
	cur         Iter
	depth       int // nested entries of the same selected loop (recursion)
}

// NewRecorder records traces for the given selected loop ids of prog.
func NewRecorder(prog *tir.Program, selected []int) *Recorder {
	m := make(map[int]bool, len(selected))
	for _, id := range selected {
		m[id] = true
	}
	return &Recorder{Selected: m, prog: prog}
}

var _ vmsim.Listener = (*Recorder)(nil)

// LoopStart opens a recording when a selected loop is entered.
func (r *Recorder) LoopStart(now int64, loop, numLocals int, frame uint64) {
	if r.active != nil {
		if loop == r.activeLoop {
			r.depth++
		}
		return
	}
	if !r.Selected[loop] {
		return
	}
	r.active = &Entry{Loop: loop}
	r.activeLoop = loop
	r.activeFrame = frame
	r.allowed = map[int]bool{}
	for _, slot := range r.prog.Loops[loop].AnnLocals {
		r.allowed[slot] = true
	}
	r.entryStart = now
	r.iterStart = now
	r.cur = Iter{}
	r.depth = 0
}

// LoopIter closes the current iteration of the recorded loop.
func (r *Recorder) LoopIter(now int64, loop int) {
	if r.active == nil || loop != r.activeLoop || r.depth > 0 {
		return
	}
	r.cur.Len = now - r.iterStart
	r.active.Iters = append(r.active.Iters, r.cur)
	r.cur = Iter{}
	r.iterStart = now
}

// LoopEnd closes the recording.
func (r *Recorder) LoopEnd(now int64, loop int) {
	if r.active == nil || loop != r.activeLoop {
		return
	}
	if r.depth > 0 {
		r.depth--
		return
	}
	r.cur.Len = now - r.iterStart
	r.active.Iters = append(r.active.Iters, r.cur)
	r.active.SeqCycles = now - r.entryStart
	r.Entries = append(r.Entries, r.active)
	r.active = nil
	r.cur = Iter{}
}

// HeapLoad records a heap read.
func (r *Recorder) HeapLoad(now int64, addr uint32, pc int) {
	if r.active == nil {
		return
	}
	r.cur.Acc = append(r.cur.Acc, Access{Rel: now - r.iterStart, Addr: uint64(addr), Kind: Load, PC: pc})
}

// HeapStore records a heap write.
func (r *Recorder) HeapStore(now int64, addr uint32, pc int) {
	if r.active == nil {
		return
	}
	r.cur.Acc = append(r.cur.Acc, Access{Rel: now - r.iterStart, Addr: uint64(addr), Kind: Store, PC: pc})
}

// slotAddr packs a frame/slot pair into a synthetic address disjoint from
// the 32-bit heap space.
func slotAddr(id vmsim.SlotID) uint64 {
	return 1<<40 | id.Frame<<12 | uint64(id.Slot&0xfff)
}

// LocalLoad records a synchronized-local read (lwl annotation) of one of
// the selected loop's globalized variables.
func (r *Recorder) LocalLoad(now int64, id vmsim.SlotID, pc int) {
	if r.active == nil || id.Frame != r.activeFrame || !r.allowed[id.Slot] {
		return
	}
	r.cur.Acc = append(r.cur.Acc, Access{Rel: now - r.iterStart, Addr: slotAddr(id), Kind: LocalLoad, PC: pc})
}

// LocalStore records a synchronized-local write (swl annotation) of one of
// the selected loop's globalized variables.
func (r *Recorder) LocalStore(now int64, id vmsim.SlotID, pc int) {
	if r.active == nil || id.Frame != r.activeFrame || !r.allowed[id.Slot] {
		return
	}
	r.cur.Acc = append(r.cur.Acc, Access{Rel: now - r.iterStart, Addr: slotAddr(id), Kind: LocalStore, PC: pc})
}

// ReadStats is ignored by the recorder.
func (r *Recorder) ReadStats(now int64, loop int) {}
