// Package tls is the thread-level-speculation execution simulator: it
// replays the iterations of a selected STL as speculative threads on the
// 4-CPU Hydra model and reports the resulting ("Actual", in Figure 11)
// execution time.
//
// The model follows the Hydra TLS semantics described in sections 1 and 3:
//
//   - threads (one loop iteration each) are started strictly in sequential
//     order on the next free CPU;
//   - a store by an older thread to a line an younger thread has already
//     read is a RAW violation: the younger thread restarts (Table 2
//     violation overhead) at the store;
//   - a dependent load that arrives after the store pays the store→load
//     communication latency;
//   - inter-thread dependent local variables are globalized and
//     synchronized by the recompiler, so they stall rather than violate;
//   - WAR and WAW hazards never cost anything (handled by the write
//     buffers);
//   - a thread whose speculative read/write state exceeds the Table 1
//     buffer limits stalls until it becomes the head (oldest) thread;
//   - threads commit in order; loop startup/shutdown and end-of-iteration
//     overheads come from Table 2.
//
// Violations only propagate from older to younger threads, so processing
// threads in sequential order with finalized predecessors is exact.
package tls

import (
	"jrpm/internal/hydra"
)

// AccessKind distinguishes trace events.
type AccessKind uint8

// Access kinds.
const (
	Load AccessKind = iota
	Store
	LocalLoad
	LocalStore
)

// Access is one memory or synchronized-local access at a relative cycle
// offset within its iteration.
type Access struct {
	Rel  int64
	Addr uint64 // byte address, or synthetic slot address for locals
	Kind AccessKind
	PC   int
}

// Iter is one recorded loop iteration.
type Iter struct {
	Len int64 // sequential cycles
	Acc []Access
}

// Entry is one recorded dynamic entry of a selected loop.
type Entry struct {
	Loop      int
	SeqCycles int64
	Iters     []Iter
}

// Result aggregates the simulation of all entries of one loop.
type Result struct {
	Loop           int
	Entries        int
	Threads        int64
	SeqCycles      int64 // sequential time of the recorded entries
	TLSCycles      int64 // simulated speculative time
	Violations     int64
	CommStalls     int64 // cycles lost waiting on store->load communication
	OverflowStalls int64 // threads that stalled on buffer overflow
	Speedup        float64
}

// ViolationRate reports RAW violations per speculative thread — the
// restart frequency an adaptive runtime watches to decide whether a
// decomposition is worth keeping (Prophet-style re-tiering: a loop whose
// threads restart constantly wastes the CPUs it occupies even when it
// still nets a speedup on paper).
func (r *Result) ViolationRate() float64 {
	if r.Threads == 0 {
		return 0
	}
	return float64(r.Violations) / float64(r.Threads)
}

// OverflowRate reports buffer-overflow stalls per speculative thread.
func (r *Result) OverflowRate() float64 {
	if r.Threads == 0 {
		return 0
	}
	return float64(r.OverflowStalls) / float64(r.Threads)
}

// syncThreshold is how many violations a static load instruction causes
// before the recompiler synchronizes it ("inserting synchronization
// locks", section 3.2): afterwards that load waits for the producing store
// instead of violating.
const syncThreshold = 2

// Simulate runs the TLS timing simulation for every recorded entry,
// aggregated per loop. Violation learning (the synchronization insertion
// of section 3.2) is shared across entries, as the recompiler would patch
// the loop once.
func Simulate(entries []*Entry, cfg hydra.Config) map[int]*Result {
	out := map[int]*Result{}
	syncd := map[int]int{} // violations per load PC
	for _, e := range entries {
		r := out[e.Loop]
		if r == nil {
			r = &Result{Loop: e.Loop}
			out[e.Loop] = r
		}
		tlsCycles := simulateEntry(e, cfg, r, syncd)
		r.Entries++
		r.Threads += int64(len(e.Iters))
		r.SeqCycles += e.SeqCycles
		r.TLSCycles += tlsCycles
	}
	for _, r := range out {
		if r.TLSCycles > 0 {
			r.Speedup = float64(r.SeqCycles) / float64(r.TLSCycles)
		} else {
			r.Speedup = 1
		}
	}
	return out
}

// lastWrite records who stored to an address last and when.
type lastWrite struct {
	thread int
	time   int64
}

// simulateEntry computes the speculative execution time of one loop entry.
func simulateEntry(e *Entry, cfg hydra.Config, r *Result, syncd map[int]int) int64 {
	p := cfg.CPUs
	ov := cfg.Overheads

	procFree := make([]int64, p)
	for i := range procFree {
		procFree[i] = ov.LoopStartup // loop startup runs before thread 0
	}

	// RAW dependences are tracked at word granularity: Hydra's secondary
	// cache write buffers hold per-word speculative data and forward it to
	// dependent loads, and the TEST dependency analysis itself compares
	// per-word store timestamps. (Buffer capacity below is still counted
	// in cache lines, per Table 1.)
	stores := map[uint64]lastWrite{} // heap: by word address
	locals := map[uint64]lastWrite{} // synchronized locals: by slot id
	var commitPrev int64 = ov.LoopStartup
	var prevStart int64 = ov.LoopStartup

	for k := range e.Iters {
		it := &e.Iters[k]
		cpu := k % p
		s := procFree[cpu]
		if s < prevStart {
			s = prevStart // threads are created in order
		}
		if k == 0 {
			s = ov.LoopStartup
		}

		// scan replays the thread's accesses from start time s with the
		// stores of finalized predecessors visible: it returns either a
		// restart time (a RAW violation: an older thread's store landed
		// after this thread already read the line) or the accumulated
		// stall, communication-wait cycles, and the absolute time of every
		// access.
		scan := func(s int64) (restartAt, stall, comm int64, times []int64, restartPC int) {
			restartAt = -1
			times = make([]int64, len(it.Acc))
			written := map[uint64]bool{}
			ownLocals := map[uint64]bool{}
			for ai := range it.Acc {
				a := &it.Acc[ai]
				t := s + a.Rel + stall
				times[ai] = t
				switch a.Kind {
				case Load:
					word := a.Addr &^ 3
					if written[word] {
						continue // forwarded from own store buffer
					}
					lw, ok := stores[word]
					if !ok || lw.thread >= k {
						continue
					}
					if lw.time > t && syncd[a.PC] < syncThreshold {
						restartAt = lw.time + ov.Violation
						restartPC = a.PC
						return
					}
					if need := lw.time + ov.StoreLoadComm; need > t {
						// Either plain store->load latency, or a
						// synchronized access waiting out the producer.
						stall += need - t
						comm += need - t
						times[ai] = need
					}
				case Store:
					written[a.Addr&^3] = true
				case LocalLoad:
					if ownLocals[a.Addr] {
						continue // reads this thread's own (private) value
					}
					lw, ok := locals[a.Addr]
					if !ok || lw.thread >= k {
						continue
					}
					// Globalized + synchronized by the recompiler: wait,
					// never violate.
					if need := lw.time + ov.StoreLoadComm; need > t {
						stall += need - t
						comm += need - t
						times[ai] = need
					}
				case LocalStore:
					ownLocals[a.Addr] = true
				}
			}
			return
		}

		// Fixed point over restarts: the thread's start only moves later,
		// which can only satisfy more dependences, so this terminates.
		var stall, comm int64
		var times []int64
		for tries := 0; ; tries++ {
			restartAt, st, cm, tm, pc := scan(s)
			if restartAt < 0 {
				stall, comm, times = st, cm, tm
				break
			}
			r.Violations++
			syncd[pc]++
			if restartAt <= s {
				restartAt = s + 1 // guarantee progress
			}
			s = restartAt
			if tries > len(it.Acc)+4 {
				// Defensive bound; with finitely many predecessor stores
				// each restart consumes one, so this cannot trigger.
				_, stall, comm, times = 0, st, cm, tm
				break
			}
		}
		r.CommStalls += comm

		// Speculative buffer overflow: find the first access at which the
		// thread's distinct-line footprint exceeds a Table 1 limit; from
		// that point it stalls until it is the head thread.
		var ovfStall int64
		ldLines := map[uint64]bool{}
		stLines := map[uint64]bool{}
		for ai := range it.Acc {
			a := &it.Acc[ai]
			over := false
			switch a.Kind {
			case Load:
				ldLines[a.Addr/hydra.LineSize] = true
				over = len(ldLines) > cfg.Buffers.LoadLines
			case Store:
				stLines[a.Addr/hydra.LineSize] = true
				over = len(stLines) > cfg.Buffers.StoreLines
			}
			if over {
				at := times[ai]
				if commitPrev > at {
					ovfStall = commitPrev - at
					r.OverflowStalls++
				}
				break
			}
		}

		finish := s + it.Len + stall + ovfStall + ov.EndOfIter
		commit := finish
		if commit < commitPrev {
			commit = commitPrev
		}

		// Publish this thread's stores at their absolute times. Younger
		// threads must honour the latest store to a line, so the max time
		// wins.
		for ai := range it.Acc {
			a := &it.Acc[ai]
			t := times[ai]
			switch a.Kind {
			case Store:
				word := a.Addr &^ 3
				if lw, ok := stores[word]; !ok || t >= lw.time {
					stores[word] = lastWrite{thread: k, time: t}
				}
			case LocalStore:
				if lw, ok := locals[a.Addr]; !ok || t >= lw.time {
					locals[a.Addr] = lastWrite{thread: k, time: t}
				}
			}
		}

		procFree[cpu] = commit
		prevStart = s
		commitPrev = commit
	}
	return commitPrev + ov.LoopShutdown
}
