// Package mcr implements the method-call-return decomposition analysis
// that section 4.1 considers and sets aside:
//
//	"Speculative threads can be composed from loops, method call returns,
//	 and general regions. The remainder of this paper will focus only on
//	 decompositions formed from loops. Our experiments so far have not
//	 found many method call return or general region decompositions that
//	 are either not covered by similar loop decompositions or have
//	 significant coverage to impact total execution time."
//
// Under method-level speculation (the authors' earlier PACT'98 work), a
// speculative thread executes the code after a call (the continuation)
// while the head thread executes the callee. The exploitable overlap at a
// call site is bounded by three quantities this analyzer measures from the
// sequential trace:
//
//   - the callee's execution time;
//   - the continuation's length (here: until the caller's next call or
//     the caller's return, whichever comes first);
//   - the offset of the first continuation load that reads a value the
//     callee stored (a RAW arc from callee to continuation — past it, the
//     speculative thread would violate).
//
// The package also tracks whether each call site executes inside a
// candidate loop, so the experiment can reproduce the paper's
// justification: call-return opportunities are mostly subsumed by loop
// decompositions.
package mcr

import (
	"sort"

	"jrpm/internal/tir"
	"jrpm/internal/vmsim"
)

// SiteStats accumulates measurements for one static call site.
type SiteStats struct {
	PC     int // call instruction
	Callee int // callee function index

	Calls       int64
	CalleeTime  int64 // total cycles inside the callee
	ContTime    int64 // total continuation-window cycles
	OverlapTime int64 // total exploitable overlap (the min of the three bounds)
	// InLoopCalls counts executions where a candidate loop was active:
	// the overlap there is already addressed by a loop decomposition.
	InLoopCalls int64
}

// Analyzer is a VM listener measuring method-call-return overlap.
type Analyzer struct {
	prog  *tir.Program
	sites map[int]*SiteStats

	// Active call records (a stack parallel to the VM's).
	frames []*callRec
	// Open continuation windows, newest first (bounded).
	windows []*contWindow

	// stores holds the last store time per word, to find callee->continuation
	// arcs. Shared and unbounded: this is a software analysis, not a
	// hardware model.
	stores map[uint64]int64

	loopDepth int // active candidate loops (annotated programs only)
	totalTime int64
}

type callRec struct {
	pc         int
	fn         int
	enter      int64
	inLoop     bool
	childCalls int
}

// contWindow is an open continuation measurement: from the call's return
// until the caller issues another call or returns.
type contWindow struct {
	site       *SiteStats
	retTime    int64
	calleeLen  int64
	calleeFrom int64 // callee entry time: stores in [calleeFrom, retTime] are arcs
	firstDep   int64 // offset of first dependent load, -1 if none yet
	closed     bool
	frame      uint64 // caller frame; window closes when this frame moves on
}

var (
	_ vmsim.Listener     = (*Analyzer)(nil)
	_ vmsim.CallListener = (*Analyzer)(nil)
)

// New builds an analyzer for an annotated program.
func New(prog *tir.Program) *Analyzer {
	return &Analyzer{
		prog:   prog,
		sites:  map[int]*SiteStats{},
		stores: map[uint64]int64{},
	}
}

// Sites returns the accumulated per-site statistics, by call PC.
func (a *Analyzer) Sites() map[int]*SiteStats { return a.sites }

// SortedSites returns sites by descending exploitable overlap.
func (a *Analyzer) SortedSites() []*SiteStats {
	out := make([]*SiteStats, 0, len(a.sites))
	for _, s := range a.sites {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].OverlapTime > out[j].OverlapTime })
	return out
}

// CallEnter opens a call record and closes the caller's open window (a
// new call ends the continuation of the previous one).
func (a *Analyzer) CallEnter(now int64, fn, pc int, frame uint64) {
	a.closeWindows(now, frame)
	a.frames = append(a.frames, &callRec{pc: pc, fn: fn, enter: now, inLoop: a.loopDepth > 0})
}

// CallExit finalizes the callee measurement and opens the continuation
// window.
func (a *Analyzer) CallExit(now int64, fn, pc int, frame uint64) {
	n := len(a.frames) - 1
	if n < 0 {
		return
	}
	rec := a.frames[n]
	a.frames = a.frames[:n]

	s := a.sites[pc]
	if s == nil {
		s = &SiteStats{PC: pc, Callee: fn}
		a.sites[pc] = s
	}
	s.Calls++
	s.CalleeTime += now - rec.enter
	if rec.inLoop {
		s.InLoopCalls++
	}
	a.windows = append(a.windows, &contWindow{
		site:       s,
		retTime:    now,
		calleeLen:  now - rec.enter,
		calleeFrom: rec.enter,
		firstDep:   -1,
		frame:      frame,
	})
	// Bound the open-window set; older windows' continuations have long
	// since been cut short by later calls anyway.
	if len(a.windows) > 64 {
		a.finalize(a.windows[0], a.windows[0].retTime)
		a.windows = a.windows[1:]
	}
}

// closeWindows ends the continuation of every window owned by this frame.
func (a *Analyzer) closeWindows(now int64, frame uint64) {
	kept := a.windows[:0]
	for _, w := range a.windows {
		if !w.closed && w.frame == frame {
			a.finalize(w, now)
			continue
		}
		kept = append(kept, w)
	}
	a.windows = kept
}

func (a *Analyzer) finalize(w *contWindow, end int64) {
	w.closed = true
	cont := end - w.retTime
	if cont < 0 {
		cont = 0
	}
	overlap := cont
	if w.calleeLen < overlap {
		overlap = w.calleeLen
	}
	if w.firstDep >= 0 && w.firstDep < overlap {
		overlap = w.firstDep
	}
	w.site.ContTime += cont
	w.site.OverlapTime += overlap
	a.totalTime = end
}

// HeapStore records store times (for callee->continuation arcs).
func (a *Analyzer) HeapStore(now int64, addr uint32, pc int) {
	a.stores[uint64(addr)] = now
}

// HeapLoad checks open continuation windows for their first dependence on
// a callee store.
func (a *Analyzer) HeapLoad(now int64, addr uint32, pc int) {
	ts, ok := a.stores[uint64(addr)]
	if !ok {
		return
	}
	for _, w := range a.windows {
		if w.closed || w.firstDep >= 0 {
			continue
		}
		if ts >= w.calleeFrom && ts <= w.retTime && now >= w.retTime {
			w.firstDep = now - w.retTime
		}
	}
}

// LocalLoad / LocalStore: locals are frame-private across a call boundary
// (the callee cannot write the caller's locals in JR), so they carry no
// callee->continuation dependences.
func (a *Analyzer) LocalLoad(now int64, id vmsim.SlotID, pc int)  {}
func (a *Analyzer) LocalStore(now int64, id vmsim.SlotID, pc int) {}

// LoopStart/LoopEnd track whether calls happen under a candidate loop.
func (a *Analyzer) LoopStart(now int64, loop, numLocals int, frame uint64) { a.loopDepth++ }
func (a *Analyzer) LoopIter(now int64, loop int)                           {}
func (a *Analyzer) LoopEnd(now int64, loop int) {
	if a.loopDepth > 0 {
		a.loopDepth--
	}
}

// ReadStats is ignored.
func (a *Analyzer) ReadStats(now int64, loop int) {}

// Finish closes any windows still open at program end.
func (a *Analyzer) Finish(now int64) {
	for _, w := range a.windows {
		if !w.closed {
			a.finalize(w, now)
		}
	}
	a.windows = nil
}

// Summary aggregates the analysis over a run.
type Summary struct {
	Sites          int
	Calls          int64
	OverlapCycles  int64   // exploitable MCR overlap
	OverlapFrac    float64 // fraction of total program cycles
	InLoopFrac     float64 // fraction of that overlap inside candidate loops
	TopSiteOverlap int64
}

// Summarize computes the run-level summary against the program's total
// cycle count.
func (a *Analyzer) Summarize(totalCycles int64) Summary {
	s := Summary{Sites: len(a.sites)}
	var inLoopOverlap int64
	for _, st := range a.sites {
		s.Calls += st.Calls
		s.OverlapCycles += st.OverlapTime
		if st.Calls > 0 {
			// Attribute overlap in proportion to in-loop executions.
			inLoopOverlap += st.OverlapTime * st.InLoopCalls / st.Calls
		}
		if st.OverlapTime > s.TopSiteOverlap {
			s.TopSiteOverlap = st.OverlapTime
		}
	}
	if totalCycles > 0 {
		s.OverlapFrac = float64(s.OverlapCycles) / float64(totalCycles)
	}
	if s.OverlapCycles > 0 {
		s.InLoopFrac = float64(inLoopOverlap) / float64(s.OverlapCycles)
	}
	return s
}
