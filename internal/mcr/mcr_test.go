package mcr_test

import (
	"testing"

	"jrpm/internal/annotate"
	"jrpm/internal/lang"
	"jrpm/internal/mcr"
	"jrpm/internal/vmsim"
)

// runMCR compiles src, annotates it, runs it with the analyzer attached,
// and returns (analyzer, total cycles).
func runMCR(t *testing.T, src string, ints map[string][]int64, opts annotate.Options) (*mcr.Analyzer, int64) {
	t.Helper()
	prog, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := annotate.Apply(prog, opts); err != nil {
		t.Fatal(err)
	}
	vm := vmsim.New(prog)
	a := mcr.New(prog)
	vm.Listeners = append(vm.Listeners, a)
	for name, vals := range ints {
		if err := vm.BindGlobalInts(name, vals); err != nil {
			t.Fatal(err)
		}
	}
	if err := vm.Run("main"); err != nil {
		t.Fatal(err)
	}
	a.Finish(vm.Cycles)
	return a, vm.Cycles
}

const indepSrc = `
global a: int[];
global out: int[];
func work(x: int): int {
	var s: int = 0;
	var i: int = 0;
	while (i < 30) { s = s + x + i; i++; }
	return s;
}
func main() {
	var v: int = work(a[0]);   // callee independent of the continuation below
	var c: int = 0;
	var j: int = 0;
	while (j < 30) { c = c + a[1] + j; j++; }
	out[0] = v + c;
}`

// TestIndependentContinuationOverlaps: callee and continuation touch
// disjoint data, so nearly the whole callee is exploitable overlap.
func TestIndependentContinuationOverlaps(t *testing.T) {
	a, total := runMCR(t, indepSrc, map[string][]int64{"a": {3, 4}, "out": {0}}, annotate.Options{})
	sum := a.Summarize(total)
	if sum.Sites != 1 || sum.Calls != 1 {
		t.Fatalf("sites/calls = %d/%d, want 1/1", sum.Sites, sum.Calls)
	}
	if sum.OverlapFrac < 0.2 {
		t.Fatalf("overlap fraction %.2f: independent continuation should overlap heavily", sum.OverlapFrac)
	}
	if sum.InLoopFrac != 0 {
		t.Fatalf("no loop is active at the call, got in-loop %.2f", sum.InLoopFrac)
	}
}

const depSrc = `
global a: int[];
global out: int[];
func work() {
	var i: int = 0;
	while (i < 40) { a[0] = a[0] + i; i++; }
}
func main() {
	work();
	out[0] = a[0];     // immediately depends on the callee's store
	var c: int = 0;
	var j: int = 0;
	while (j < 40) { c = c + j; j++; }
	out[1] = c;
}`

// TestDependentContinuationCutsOverlap: the first continuation load reads
// what the callee wrote, so the exploitable overlap collapses to the arc
// offset.
func TestDependentContinuationCutsOverlap(t *testing.T) {
	a, total := runMCR(t, depSrc, map[string][]int64{"a": {0}, "out": {0, 0}}, annotate.Options{})
	sum := a.Summarize(total)
	if sum.OverlapFrac > 0.05 {
		t.Fatalf("overlap fraction %.3f: the immediate RAW arc should kill the overlap", sum.OverlapFrac)
	}
	for _, s := range a.Sites() {
		if s.OverlapTime >= s.CalleeTime/4 {
			t.Fatalf("site overlap %d vs callee %d: dependence not respected", s.OverlapTime, s.CalleeTime)
		}
	}
}

const inLoopSrc = `
global a: int[];
global out: int[];
func f(x: int): int { return x*2 + 1; }
func main() {
	var i: int = 0;
	var s: int = 0;
	while (i < len(a)) {
		s = s + f(a[i]);
		i++;
	}
	out[0] = s;
}`

// TestCallsInsideLoopsAttributed: with loop markers on, calls under a
// candidate loop count as loop-covered (the paper's subsumption argument).
func TestCallsInsideLoopsAttributed(t *testing.T) {
	a, total := runMCR(t, inLoopSrc, map[string][]int64{"a": make([]int64, 50), "out": {0}},
		annotate.Options{LoopMarkers: true})
	sum := a.Summarize(total)
	if sum.Calls != 50 {
		t.Fatalf("calls = %d, want 50", sum.Calls)
	}
	if sum.InLoopFrac < 0.99 {
		t.Fatalf("in-loop fraction %.2f, want ~1 (all calls sit in the loop)", sum.InLoopFrac)
	}
}

// TestContinuationEndsAtNextCall: the window for call 1 closes when the
// caller issues call 2, so overlap never double-counts.
func TestContinuationEndsAtNextCall(t *testing.T) {
	src := `
global out: int[];
func w(x: int): int {
	var s: int = 0;
	var i: int = 0;
	while (i < 20) { s = s + x; i++; }
	return s;
}
func main() {
	var a: int = w(1);
	var b: int = w(2);
	out[0] = a + b;
}`
	a, _ := runMCR(t, src, map[string][]int64{"out": {0}}, annotate.Options{})
	for _, s := range a.Sites() {
		if s.ContTime > s.CalleeTime {
			// Each continuation is cut short by the next call (or the
			// tiny epilogue); it must not stretch over the second callee.
			t.Fatalf("site pc %d: continuation %d exceeds callee %d", s.PC, s.ContTime, s.CalleeTime)
		}
	}
}

func TestSortedSitesOrder(t *testing.T) {
	a, _ := runMCR(t, indepSrc, map[string][]int64{"a": {3, 4}, "out": {0}}, annotate.Options{})
	sites := a.SortedSites()
	for i := 1; i < len(sites); i++ {
		if sites[i].OverlapTime > sites[i-1].OverlapTime {
			t.Fatal("sites not sorted by overlap")
		}
	}
}

// TestExperimentShapeClaim reproduces the section 4.1 conclusion across a
// couple of benchmarks via the experiments wrapper (full sweep runs in
// internal/experiments tests).
func TestExperimentShapeClaim(t *testing.T) {
	// The analyzer itself is exercised above; here just check the
	// analyzer behaves on a benchmark-shaped nest: calls inside selected
	// loops are flagged as covered.
	a, total := runMCR(t, inLoopSrc, map[string][]int64{"a": make([]int64, 64), "out": {0}},
		annotate.Optimized())
	sum := a.Summarize(total)
	if sum.OverlapCycles > 0 && sum.InLoopFrac < 0.99 {
		t.Fatalf("overlap not attributed to the covering loop: %+v", sum)
	}
}
