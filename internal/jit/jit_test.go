package jit_test

import (
	"strings"
	"testing"

	"jrpm/internal/annotate"
	"jrpm/internal/hydra"
	"jrpm/internal/jit"
	"jrpm/internal/lang"
	"jrpm/internal/tir"
)

const huffmanish = `
global bits: int[];
global out: int[];
func main() {
	var in_p: int = 0;
	var out_p: int = 0;
	var limit: int = len(bits) - 1;
	do {
		var n: int = 0;
		while (bits[in_p] == 0 && n < 10) {
			n++;
			in_p++;
		}
		out[out_p] = n;
		out_p++;
	} while (in_p < limit);
}`

func compileAnnotated(t *testing.T) *tir.Program {
	t.Helper()
	prog, err := lang.Compile(huffmanish)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := annotate.Apply(prog, annotate.Optimized()); err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestPlanClassifications: the recompilation plan mirrors section 3.2's
// transformations on the Figure 3 shape.
func TestPlanClassifications(t *testing.T) {
	prog := compileAnnotated(t)
	// Loop 0 is the outer do-while.
	plan, err := jit.Build(prog, []int{0}, hydra.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Loops) != 1 {
		t.Fatalf("plan has %d loops", len(plan.Loops))
	}
	lp := plan.Loops[0]
	has := func(list []string, name string) bool {
		for _, s := range list {
			if s == name {
				return true
			}
		}
		return false
	}
	if !has(lp.Globalized, "in_p") {
		t.Errorf("in_p not globalized: %+v", lp)
	}
	if !has(lp.Inductors, "out_p") {
		t.Errorf("out_p not an inductor: %+v", lp)
	}
	if !has(lp.Invariants, "limit") {
		t.Errorf("limit not an invariant: %+v", lp)
	}
	if !has(lp.Privatized, "n") {
		t.Errorf("n not privatized: %+v", lp)
	}
	if lp.StartupCycles != 25 || lp.ShutdownCycles != 25 || lp.IterCycles != 5 {
		t.Errorf("control costs %d/%d/%d, want Table 2's 25/25/5",
			lp.StartupCycles, lp.ShutdownCycles, lp.IterCycles)
	}
	report := plan.String()
	for _, want := range []string{"in_p", "out_p", "limit", "startup 25"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

// TestBuildRejectsBadLoops: unknown ids and screened-out loops fail.
func TestBuildRejectsBadLoops(t *testing.T) {
	prog := compileAnnotated(t)
	if _, err := jit.Build(prog, []int{99}, hydra.DefaultConfig()); err == nil {
		t.Fatal("unknown loop accepted")
	}

	serial, err := lang.Compile(`
global a: int[];
func main() {
	var p: int = 0;
	while (a[p] != -1) { p = a[p]; }
}`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := annotate.Apply(serial, annotate.Optimized()); err != nil {
		t.Fatal(err)
	}
	if _, err := jit.Build(serial, []int{0}, hydra.DefaultConfig()); err == nil {
		t.Fatal("scalar-screen-rejected loop accepted by the recompiler")
	}
}
