// Package jit models the speculative recompilation step (section 3.2):
// once TEST has chosen the best STLs, the dynamic compiler re-emits them
// as speculative threads, inserting the control routines of Table 2 and
// applying the scalar transformations the paper lists — globalizing
// inter-thread dependent local variables, register-allocating loop
// invariants, rewriting loop inductors as non-violating iterators, and
// transforming sum/min-max reductions.
//
// In this reproduction the transformations are semantic facts consumed by
// the TLS simulator rather than machine-code rewrites: inductors and
// reductions carry no recorded dependencies (they are eliminated), and
// globalized locals synchronize through store->load communication instead
// of violating. Build derives, per selected loop, exactly which variables
// fall in which class, so reports and the simulator agree with what a real
// recompiler would have done.
package jit

import (
	"fmt"
	"sort"
	"strings"

	"jrpm/internal/cfg"
	"jrpm/internal/hydra"
	"jrpm/internal/scalar"
	"jrpm/internal/tir"
)

// LoopPlan is the recompilation plan for one selected STL.
type LoopPlan struct {
	Loop int
	Name string
	// Globalized lists locals with potential inter-thread dependencies,
	// moved to shared storage and synchronized.
	Globalized []string
	// Inductors are rewritten as non-violating loop iterators
	// (incremented in the end-of-iteration routine).
	Inductors []string
	// Reductions are privatized per thread and merged at loop shutdown.
	Reductions []string
	// Invariants are register-allocated at loop startup.
	Invariants []string
	// Privatized locals are written before read every iteration; each
	// thread keeps a private copy.
	Privatized []string
	// StartupCycles/ShutdownCycles/IterCycles are the inserted control
	// routine costs (Table 2).
	StartupCycles  int64
	ShutdownCycles int64
	IterCycles     int64
}

// Plan is a full recompilation plan.
type Plan struct {
	Loops []LoopPlan
}

// Build computes the recompilation plan for the selected loops of an
// annotated program.
func Build(prog *tir.Program, selected []int, cfg_ hydra.Config) (*Plan, error) {
	p := &Plan{}
	sorted := append([]int(nil), selected...)
	sort.Ints(sorted)
	for _, id := range sorted {
		if id < 0 || id >= len(prog.Loops) {
			return nil, fmt.Errorf("jit: no loop L%d", id)
		}
		info := &prog.Loops[id]
		if !info.Candidate {
			return nil, fmt.Errorf("jit: loop L%d (%s) was rejected by the scalar screen: %s",
				id, info.Name, info.Reject)
		}
		f := prog.Funcs[info.Func]
		lp, err := planLoop(f, info, cfg_)
		if err != nil {
			return nil, err
		}
		p.Loops = append(p.Loops, *lp)
	}
	return p, nil
}

func planLoop(f *tir.Function, info *tir.LoopInfo, cfg_ hydra.Config) (*LoopPlan, error) {
	g := cfg.Build(f)
	forest := g.NaturalLoops()
	l := forest.ByHeader[info.Header]
	if l == nil {
		return nil, fmt.Errorf("jit: loop L%d header b%d not found in %s", info.ID, info.Header, f.Name)
	}
	sc := scalar.Analyze(f, l, g, forest)
	lp := &LoopPlan{
		Loop:           info.ID,
		Name:           info.Name,
		StartupCycles:  cfg_.Overheads.LoopStartup,
		ShutdownCycles: cfg_.Overheads.LoopShutdown,
		IterCycles:     cfg_.Overheads.EndOfIter,
	}
	for _, slot := range sc.Accessed {
		name := f.Locals[slot].Name
		switch sc.Classes[slot] {
		case scalar.ClassInductor:
			lp.Inductors = append(lp.Inductors, name)
		case scalar.ClassReduction:
			lp.Reductions = append(lp.Reductions, name)
		case scalar.ClassInvariant:
			lp.Invariants = append(lp.Invariants, name)
		case scalar.ClassPrivate:
			lp.Privatized = append(lp.Privatized, name)
		default:
			lp.Globalized = append(lp.Globalized, name)
		}
	}
	return lp, nil
}

// ByLoop returns the plan for one loop id, or nil when the loop is not
// part of this plan.
func (p *Plan) ByLoop(id int) *LoopPlan {
	for i := range p.Loops {
		if p.Loops[i].Loop == id {
			return &p.Loops[i]
		}
	}
	return nil
}

// Summary renders one loop plan as a single line — the transformation
// classes with their variable counts, in the order the recompiler applies
// them. Adaptive callers stamp this on promotion records so every tier
// transition names the code transformation it bought.
func (lp *LoopPlan) Summary() string {
	parts := make([]string, 0, 5)
	add := func(label string, vars []string) {
		if len(vars) > 0 {
			parts = append(parts, fmt.Sprintf("%d %s", len(vars), label))
		}
	}
	add("globalized", lp.Globalized)
	add("inductors", lp.Inductors)
	add("reductions", lp.Reductions)
	add("invariants", lp.Invariants)
	add("privatized", lp.Privatized)
	if len(parts) == 0 {
		return "no scalar rewrites"
	}
	return strings.Join(parts, ", ")
}

// String renders the plan as a report.
func (p *Plan) String() string {
	var sb strings.Builder
	for _, lp := range p.Loops {
		fmt.Fprintf(&sb, "L%d (%s): startup %d, shutdown %d, eoi %d cycles\n",
			lp.Loop, lp.Name, lp.StartupCycles, lp.ShutdownCycles, lp.IterCycles)
		if len(lp.Globalized) > 0 {
			fmt.Fprintf(&sb, "  globalized + synchronized: %s\n", strings.Join(lp.Globalized, ", "))
		}
		if len(lp.Inductors) > 0 {
			fmt.Fprintf(&sb, "  non-violating inductors:   %s\n", strings.Join(lp.Inductors, ", "))
		}
		if len(lp.Reductions) > 0 {
			fmt.Fprintf(&sb, "  transformed reductions:    %s\n", strings.Join(lp.Reductions, ", "))
		}
		if len(lp.Invariants) > 0 {
			fmt.Fprintf(&sb, "  register-alloc invariants: %s\n", strings.Join(lp.Invariants, ", "))
		}
		if len(lp.Privatized) > 0 {
			fmt.Fprintf(&sb, "  privatized locals:         %s\n", strings.Join(lp.Privatized, ", "))
		}
	}
	return sb.String()
}
