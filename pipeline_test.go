package jrpm_test

import (
	"testing"

	"jrpm"
	"jrpm/internal/core"
	"jrpm/internal/vmsim"
	"jrpm/internal/workloads"
)

// TestHuffmanPipeline walks the paper's own running example (Figure 3 /
// Table 3) through the whole profiling pipeline and checks the headline
// behaviours: the decoder is correct, the outer loop carries critical arcs
// to the previous thread (the in_p dependency), both loops get estimates,
// and Equation 2 picks the outer loop.
func TestHuffmanPipeline(t *testing.T) {
	w, err := workloads.ByName("Huffman")
	if err != nil {
		t.Fatal(err)
	}
	in := w.NewInput(1)

	res, err := jrpm.Profile(w.Source, in, jrpm.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	// Correctness of the kernel itself.
	prog, cycles, err := jrpm.RunClean(w.Source, in, res.Opts.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = prog
	if cycles != res.CleanCycles {
		t.Fatalf("clean run not deterministic: %d vs %d", cycles, res.CleanCycles)
	}

	// The tracer should have found exactly two loops, nested.
	if len(res.Annotated.Loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(res.Annotated.Loops))
	}
	an := res.Analysis
	if len(an.Roots) != 1 {
		t.Fatalf("got %d root loops, want 1", len(an.Roots))
	}
	outer := an.Roots[0]
	if len(outer.Children) != 1 {
		t.Fatalf("outer loop has %d children, want 1", len(outer.Children))
	}
	inner := outer.Children[0]

	// The outer loop must exhibit the in_p critical arc to the previous
	// thread on essentially every iteration.
	os := outer.Stats
	if os == nil || os.Threads < 100 {
		t.Fatalf("outer stats missing or too few threads: %+v", os)
	}
	pairs := os.Threads - os.Entries
	if os.ArcCount[core.BinPrev] < pairs*9/10 {
		t.Fatalf("outer arc count %d over %d pairs: expected arcs on ~every iteration",
			os.ArcCount[core.BinPrev], pairs)
	}

	// Estimates: the outer loop should promise a real speedup; the inner
	// loop is tiny and dependency-bound, so it must not beat the outer.
	if outer.Est.Speedup <= 1.1 {
		t.Fatalf("outer estimated speedup %.2f, expected > 1.1", outer.Est.Speedup)
	}
	if !outer.Selected {
		t.Fatalf("Equation 2 did not select the outer loop (outer %.2fx, inner %.2fx)",
			outer.Est.Speedup, inner.Est.Speedup)
	}
	if inner.Selected {
		t.Fatal("inner loop selected alongside outer: decompositions must be exclusive")
	}

	// Profiling overhead should be the paper's "minor slowdown", far from
	// the >100x of software profiling.
	if s := res.Slowdown(); s < 1.0 || s > 1.6 {
		t.Fatalf("profiling slowdown %.2fx outside plausible range", s)
	}
}

// TestHuffmanDecodesCorrectly runs the kernel clean and validates output.
func TestHuffmanDecodesCorrectly(t *testing.T) {
	w, err := workloads.ByName("Huffman")
	if err != nil {
		t.Fatal(err)
	}
	in := w.NewInput(0.5)
	prog, _, err := jrpm.RunClean(w.Source, in, jrpm.DefaultOptions().Cfg)
	if err != nil {
		t.Fatal(err)
	}
	vm := vmsim.New(prog)
	for name, vals := range in.Ints {
		if err := vm.BindGlobalInts(name, vals); err != nil {
			t.Fatal(err)
		}
	}
	if err := vm.Run("main"); err != nil {
		t.Fatal(err)
	}
	if err := w.Check(vm); err != nil {
		t.Fatal(err)
	}
}
