// Package jrpm is the public API of this reproduction of "TEST: A Tracer
// for Extracting Speculative Threads" (Chen & Olukotun, CGO 2003): a
// complete Java Runtime Parallelizing Machine pipeline over the JR
// language.
//
// The pipeline mirrors Figure 1 of the paper:
//
//  1. Compile the source and identify potential STLs (natural loops that
//     pass the scalar screen), inserting annotation instructions.
//  2. Run the annotated program sequentially; the TEST comparator-bank
//     model collects dependency and buffer statistics per loop.
//  3. Post-process the statistics: estimate each loop's speculative
//     speedup (Equation 1) and choose the best decompositions
//     (Equation 2).
//  4. Recompile the chosen loops as speculative threads.
//  5. Run the speculative code — here, a trace-driven TLS timing
//     simulation of the 4-CPU Hydra CMP.
//
// Profile covers steps 1–3; Speculate covers steps 4–5.
package jrpm

import (
	"fmt"

	"jrpm/internal/annotate"
	"jrpm/internal/core"
	"jrpm/internal/hydra"
	"jrpm/internal/lang"
	"jrpm/internal/opt"
	"jrpm/internal/profile"
	"jrpm/internal/tir"
	"jrpm/internal/vmsim"
)

// Input binds harness data to a program's global arrays.
type Input struct {
	Ints   map[string][]int64
	Floats map[string][]float64
}

// Options configures the pipeline. The zero value is replaced by
// DefaultOptions.
type Options struct {
	Cfg    hydra.Config
	Annot  annotate.Options
	Tracer core.Options
	Select profile.SelectOptions
	// Optimize runs the microJIT scalar optimizer (constant folding, copy
	// propagation, dead-register elimination) before annotation, as the
	// paper's dynamic compiler does. Off by default so the published
	// experiment numbers stay stable; see BenchmarkOptimizerEffect.
	Optimize bool
}

// DefaultOptions returns the paper's setup: the Hydra configuration,
// optimized annotations, default runtime policies.
func DefaultOptions() Options {
	return Options{
		Cfg:    hydra.DefaultConfig(),
		Annot:  annotate.Optimized(),
		Tracer: core.DefaultOptions(),
		Select: profile.DefaultSelectOptions(),
	}
}

// ProfileResult is the outcome of the profiling phase (steps 1-3).
type ProfileResult struct {
	// Clean is the compiled program without annotations; Annotated is the
	// program that was traced.
	Clean     *tir.Program
	Annotated *tir.Program
	// CleanCycles is the sequential execution time without tracing;
	// TracedCycles the time with annotation overheads (Figure 6 compares
	// the two).
	CleanCycles  int64
	TracedCycles int64
	// Tracer is the TEST hardware model after the run.
	Tracer *core.Tracer
	// Analysis holds the loop tree, Equation 1 estimates and the
	// Equation 2 selection.
	Analysis *profile.Analysis
	// Event counters from the traced run.
	HeapLoads, HeapStores, LocalAnnots, LoopAnnots, ReadStats int64
	// AnnotationCount is the number of annotation instructions inserted.
	AnnotationCount int
	Opts            Options
}

// Slowdown is the tracing overhead: traced time / clean time.
func (r *ProfileResult) Slowdown() float64 {
	if r.CleanCycles == 0 {
		return 1
	}
	return float64(r.TracedCycles) / float64(r.CleanCycles)
}

func newVM(prog *tir.Program, in Input, cfg hydra.Config) (*vmsim.VM, error) {
	vm := vmsim.New(prog)
	vm.AnnotCost = cfg.Tracer.AnnotCost
	vm.ReadStatsCost = cfg.Tracer.ReadStatsCost
	for name, vals := range in.Ints {
		if err := vm.BindGlobalInts(name, vals); err != nil {
			return nil, err
		}
	}
	for name, vals := range in.Floats {
		if err := vm.BindGlobalFloats(name, vals); err != nil {
			return nil, err
		}
	}
	return vm, nil
}

// RunClean compiles and runs src without any instrumentation, returning
// the program and its sequential cycle count.
func RunClean(src string, in Input, cfg hydra.Config) (*tir.Program, int64, error) {
	return runClean(src, in, cfg, false)
}

func runClean(src string, in Input, cfg hydra.Config, optimize bool) (*tir.Program, int64, error) {
	prog, err := lang.Compile(src)
	if err != nil {
		return nil, 0, err
	}
	if optimize {
		opt.Program(prog)
	}
	if _, err := annotate.Apply(prog, annotate.Options{}); err != nil {
		return nil, 0, fmt.Errorf("loop discovery: %w", err)
	}
	vm, err := newVM(prog, in, cfg)
	if err != nil {
		return nil, 0, err
	}
	if err := vm.Run("main"); err != nil {
		return nil, 0, err
	}
	return prog, vm.Cycles, nil
}

// Profile runs the full profiling phase on a JR source program.
func Profile(src string, in Input, opts Options) (*ProfileResult, error) {
	if opts.Cfg.CPUs == 0 {
		defaults := DefaultOptions()
		defaults.Optimize = opts.Optimize
		opts = defaults
	}
	clean, cleanCycles, err := runClean(src, in, opts.Cfg, opts.Optimize)
	if err != nil {
		return nil, err
	}

	annotated, err := lang.Compile(src)
	if err != nil {
		return nil, err
	}
	if opts.Optimize {
		opt.Program(annotated)
	}
	nAnnot, err := annotate.Apply(annotated, opts.Annot)
	if err != nil {
		return nil, fmt.Errorf("annotate: %w", err)
	}

	vm, err := newVM(annotated, in, opts.Cfg)
	if err != nil {
		return nil, err
	}
	tracer := core.NewTracer(annotated, opts.Cfg, opts.Tracer)
	vm.Listeners = append(vm.Listeners, tracer)
	if err := vm.Run("main"); err != nil {
		return nil, err
	}

	analysis := profile.BuildTree(annotated, tracer, vm.Cycles, cleanCycles, opts.Cfg)
	analysis.Select(opts.Select)

	return &ProfileResult{
		Clean:           clean,
		Annotated:       annotated,
		CleanCycles:     cleanCycles,
		TracedCycles:    vm.Cycles,
		Tracer:          tracer,
		Analysis:        analysis,
		HeapLoads:       vm.NHeapLoads,
		HeapStores:      vm.NHeapStores,
		LocalAnnots:     vm.NLocalAnnot,
		LoopAnnots:      vm.NLoopAnnot,
		ReadStats:       vm.NReadStats,
		AnnotationCount: nAnnot,
		Opts:            opts,
	}, nil
}
