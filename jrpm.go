// Package jrpm is the public API of this reproduction of "TEST: A Tracer
// for Extracting Speculative Threads" (Chen & Olukotun, CGO 2003): a
// complete Java Runtime Parallelizing Machine pipeline over the JR
// language.
//
// The pipeline mirrors Figure 1 of the paper:
//
//  1. Compile the source and identify potential STLs (natural loops that
//     pass the scalar screen), inserting annotation instructions.
//  2. Run the annotated program sequentially; the TEST comparator-bank
//     model collects dependency and buffer statistics per loop.
//  3. Post-process the statistics: estimate each loop's speculative
//     speedup (Equation 1) and choose the best decompositions
//     (Equation 2).
//  4. Recompile the chosen loops as speculative threads.
//  5. Run the speculative code — here, a trace-driven TLS timing
//     simulation of the 4-CPU Hydra CMP.
//
// Profile covers steps 1–3; Speculate covers steps 4–5.
//
// The compile stage (step 1) and the run stages (steps 2–5) are split:
// Compile produces a Compiled artifact that is immutable afterwards and
// can be profiled many times, concurrently, against different inputs.
// internal/service builds its content-addressed artifact cache on this
// split, so a daemon re-profiling the same source skips lexing, parsing,
// code generation and annotation entirely.
package jrpm

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"jrpm/internal/annotate"
	"jrpm/internal/core"
	"jrpm/internal/hydra"
	"jrpm/internal/lang"
	"jrpm/internal/opt"
	"jrpm/internal/profile"
	"jrpm/internal/tir"
	"jrpm/internal/vmsim"
)

// Version identifies the module build; jrpmd reports it on
// GET /v1/version so a cluster coordinator can tell apart workers by
// build as well as by trace-format version.
const Version = "0.4.0"

// NativeLoopStats is the per-loop execution record of the closure-
// threaded native tier (re-exported from vmsim for API consumers).
type NativeLoopStats = vmsim.NativeLoopStats

// Input binds harness data to a program's global arrays.
type Input struct {
	Ints   map[string][]int64
	Floats map[string][]float64
}

// Options configures the pipeline. The zero value of any field is
// replaced by the corresponding DefaultOptions field (see Normalize).
type Options struct {
	Cfg    hydra.Config
	Annot  annotate.Options
	Tracer core.Options
	Select profile.SelectOptions
	// Optimize runs the microJIT scalar optimizer (constant folding, copy
	// propagation, dead-register elimination) before annotation, as the
	// paper's dynamic compiler does. Off by default so the published
	// experiment numbers stay stable; see BenchmarkOptimizerEffect.
	Optimize bool
	// SamplePeriod, when > 0, attaches a sampling profiler to the traced
	// run: one sample every SamplePeriod VM steps (rounded up to the
	// interpreter's poll window), attributed to the executing function
	// and the active annotated-loop stack. 0 leaves the dispatch loop
	// untouched. See ProfileResult.Samples.
	SamplePeriod int64
	// NativeLoops lists annotated-loop IDs to execute on the closure-
	// threaded native tier (internal/vmsim/native) during the profile
	// runs. The tier is bit-identical to the interpreter — simulated
	// cycles, events, counters and traces are unaffected; only wall-clock
	// speed changes — so it is safe to enable per-epoch from adaptive
	// sessions. Loops the native compiler rejects silently stay on the
	// predecoded tier; see ProfileResult.Native and NativeRejected.
	NativeLoops []int
}

// DefaultOptions returns the paper's setup: the Hydra configuration,
// optimized annotations, default runtime policies.
func DefaultOptions() Options {
	return Options{
		Cfg:    hydra.DefaultConfig(),
		Annot:  annotate.Optimized(),
		Tracer: core.DefaultOptions(),
		Select: profile.DefaultSelectOptions(),
	}
}

// Normalize substitutes defaults for each unset Options field
// independently: a caller who sets Cfg but leaves Annot, Tracer or Select
// zero gets the default policies for the fields they left out, not
// zero-valued ones. A zero-valued field means "unset" — callers who need
// a policy whose meaningful configuration happens to equal the zero value
// must set at least one other field of that policy struct.
func Normalize(opts Options) Options {
	d := DefaultOptions()
	if opts.Cfg.CPUs == 0 {
		opts.Cfg = d.Cfg
	}
	if opts.Annot == (annotate.Options{}) {
		opts.Annot = d.Annot
	}
	if opts.Tracer == (core.Options{}) {
		opts.Tracer = d.Tracer
	}
	if opts.Select == (profile.SelectOptions{}) {
		opts.Select = d.Select
	}
	return opts
}

// Compiled holds the compile-stage artifacts for one source program: the
// clean program (loop table filled, no instrumentation) and the annotated
// program traced by TEST. Both programs are read-only once Compile
// returns — see the tir.Program documentation — so a Compiled may be
// shared freely across goroutines and profiled concurrently; each Profile
// call builds its own VM and Tracer.
type Compiled struct {
	Clean     *tir.Program
	Annotated *tir.Program
	// AnnotationCount is the number of annotation instructions inserted
	// into Annotated.
	AnnotationCount int
	// Annot and Optimize record the compile-stage options the artifact
	// was built with (the run-stage options are free to vary per Profile
	// call).
	Annot    annotate.Options
	Optimize bool
}

// Compile runs the compile stage (step 1) once: lex, parse, generate TIR,
// optionally run the scalar optimizer, discover loops, and insert
// annotations per opts.Annot. Only opts.Annot and opts.Optimize affect
// the artifact; the remaining fields configure the run stages.
func Compile(src string, opts Options) (*Compiled, error) {
	opts = Normalize(opts)
	clean, err := lang.Compile(src)
	if err != nil {
		return nil, err
	}
	if opts.Optimize {
		opt.Program(clean)
	}
	if _, err := annotate.Apply(clean, annotate.Options{}); err != nil {
		return nil, fmt.Errorf("loop discovery: %w", err)
	}

	annotated, err := lang.Compile(src)
	if err != nil {
		return nil, err
	}
	if opts.Optimize {
		opt.Program(annotated)
	}
	nAnnot, err := annotate.Apply(annotated, opts.Annot)
	if err != nil {
		return nil, fmt.Errorf("annotate: %w", err)
	}
	// Lower both programs to the VM's pre-decoded instruction stream now,
	// while this is still the compile stage: every later Profile/RunClean
	// (and every jrpmd worker sharing this artifact) hits the decode
	// cache instead of paying the lowering on its first run.
	vmsim.Predecode(clean)
	vmsim.Predecode(annotated)
	return &Compiled{
		Clean:           clean,
		Annotated:       annotated,
		AnnotationCount: nAnnot,
		Annot:           opts.Annot,
		Optimize:        opts.Optimize,
	}, nil
}

// ProfileResult is the outcome of the profiling phase (steps 1-3).
type ProfileResult struct {
	// Clean is the compiled program without annotations; Annotated is the
	// program that was traced.
	Clean     *tir.Program
	Annotated *tir.Program
	// CleanCycles is the sequential execution time without tracing;
	// TracedCycles the time with annotation overheads (Figure 6 compares
	// the two).
	CleanCycles  int64
	TracedCycles int64
	// Tracer is the TEST hardware model after the run.
	Tracer *core.Tracer
	// Analysis holds the loop tree, Equation 1 estimates and the
	// Equation 2 selection.
	Analysis *profile.Analysis
	// Event counters from the traced run.
	HeapLoads, HeapStores, LocalAnnots, LoopAnnots, ReadStats int64
	// Samples is the sampling-profiler result for the traced run; nil
	// unless Options.SamplePeriod was set.
	Samples *vmsim.SampleProfile
	// Native reports the native tier's execution of the traced run (one
	// entry per compiled loop); nil unless Options.NativeLoops was set.
	// NativeRejected maps requested loop IDs the native compiler refused
	// to their reasons.
	Native         []vmsim.NativeLoopStats
	NativeRejected map[int]string
	// AnnotationCount is the number of annotation instructions inserted.
	AnnotationCount int
	Opts            Options
}

// Slowdown is the tracing overhead: traced time / clean time.
func (r *ProfileResult) Slowdown() float64 {
	if r.CleanCycles == 0 {
		return 1
	}
	return float64(r.TracedCycles) / float64(r.CleanCycles)
}

func newVM(prog *tir.Program, in Input, cfg hydra.Config) (*vmsim.VM, error) {
	vm := vmsim.New(prog)
	vm.AnnotCost = cfg.Tracer.AnnotCost
	vm.ReadStatsCost = cfg.Tracer.ReadStatsCost
	// Bind in sorted order: heap addresses are assigned at bind time, so
	// map-iteration order would make the address stream — and anything
	// derived from it, like buffer-line high-water marks or a recorded
	// trace — differ from run to run.
	for _, name := range sortedKeys(in.Ints) {
		if err := vm.BindGlobalInts(name, in.Ints[name]); err != nil {
			return nil, err
		}
	}
	for _, name := range sortedKeys(in.Floats) {
		if err := vm.BindGlobalFloats(name, in.Floats[name]); err != nil {
			return nil, err
		}
	}
	return vm, nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// runVM executes the VM's main function under ctx: when ctx is canceled
// or times out the VM is interrupted at the next check point and the
// context's cause is returned.
func runVM(ctx context.Context, vm *vmsim.VM) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return context.Cause(ctx)
	}
	stop := context.AfterFunc(ctx, vm.Interrupt)
	defer stop()
	err := vm.Run("main")
	if errors.Is(err, vmsim.ErrInterrupted) {
		if cause := context.Cause(ctx); cause != nil {
			return cause
		}
	}
	return err
}

// RunClean compiles and runs src without any instrumentation, returning
// the program and its sequential cycle count.
func RunClean(src string, in Input, cfg hydra.Config) (*tir.Program, int64, error) {
	prog, err := lang.Compile(src)
	if err != nil {
		return nil, 0, err
	}
	if _, err := annotate.Apply(prog, annotate.Options{}); err != nil {
		return nil, 0, fmt.Errorf("loop discovery: %w", err)
	}
	vm, err := newVM(prog, in, cfg)
	if err != nil {
		return nil, 0, err
	}
	if err := vm.Run("main"); err != nil {
		return nil, 0, err
	}
	return prog, vm.Cycles, nil
}

// RunClean executes the clean program sequentially and returns its cycle
// count. Safe for concurrent use: each call builds a fresh VM.
func (c *Compiled) RunClean(ctx context.Context, in Input, cfg hydra.Config) (int64, error) {
	vm, err := newVM(c.Clean, in, cfg)
	if err != nil {
		return 0, err
	}
	if err := runVM(ctx, vm); err != nil {
		return 0, err
	}
	return vm.Cycles, nil
}

// Profile runs the full profiling phase on a JR source program.
func Profile(src string, in Input, opts Options) (*ProfileResult, error) {
	opts = Normalize(opts)
	c, err := Compile(src, opts)
	if err != nil {
		return nil, err
	}
	return c.Profile(context.Background(), in, opts)
}

// Profile runs the run stages of the profiling phase (steps 2-3) on a
// pre-compiled artifact: a clean sequential run for the baseline cycle
// count, a traced run with the TEST model attached, then tree building,
// Equation 1 estimation and Equation 2 selection.
//
// Only the run-stage fields of opts (Cfg, Tracer, Select) are consulted;
// the compile-stage fields were fixed when c was built. Safe for
// concurrent use on a shared c: every call builds its own VMs and Tracer.
func (c *Compiled) Profile(ctx context.Context, in Input, opts Options) (*ProfileResult, error) {
	return c.profileWith(ctx, in, opts)
}

// profileWith is Profile with extra listeners attached to the traced run
// after the TEST tracer. ProfileRecord passes the trace writer here, so
// the recorded event stream is — by construction — the exact sequence the
// live comparator-bank model consumed.
func (c *Compiled) profileWith(ctx context.Context, in Input, opts Options, extra ...vmsim.Listener) (*ProfileResult, error) {
	opts = Normalize(opts)
	opts.Annot = c.Annot
	opts.Optimize = c.Optimize

	cleanCycles, err := c.runCleanOpts(ctx, in, opts)
	if err != nil {
		return nil, err
	}

	vm, err := newVM(c.Annotated, in, opts.Cfg)
	if err != nil {
		return nil, err
	}
	if len(opts.NativeLoops) > 0 {
		if _, err := vm.InstallNative(opts.NativeLoops...); err != nil {
			return nil, err
		}
	}
	tracer := core.NewTracer(c.Annotated, opts.Cfg, opts.Tracer)
	vm.Listeners = append(vm.Listeners, tracer)
	vm.Listeners = append(vm.Listeners, extra...)
	var sampler *vmsim.Sampler
	if opts.SamplePeriod > 0 {
		sampler = vmsim.NewSampler(opts.SamplePeriod)
		vm.SetSampler(sampler)
	}
	if err := runVM(ctx, vm); err != nil {
		return nil, err
	}

	analysis := profile.BuildTree(c.Annotated, tracer, vm.Cycles, cleanCycles, opts.Cfg)
	analysis.Select(opts.Select)

	res := &ProfileResult{
		Clean:           c.Clean,
		Annotated:       c.Annotated,
		CleanCycles:     cleanCycles,
		TracedCycles:    vm.Cycles,
		Tracer:          tracer,
		Analysis:        analysis,
		HeapLoads:       vm.NHeapLoads,
		HeapStores:      vm.NHeapStores,
		LocalAnnots:     vm.NLocalAnnot,
		LoopAnnots:      vm.NLoopAnnot,
		ReadStats:       vm.NReadStats,
		AnnotationCount: c.AnnotationCount,
		Opts:            opts,
	}
	if sampler != nil {
		res.Samples = sampler.Profile(c.Annotated)
	}
	if len(opts.NativeLoops) > 0 {
		res.Native = vm.NativeStats()
		res.NativeRejected = vm.NativeRejected()
	}
	return res, nil
}

// runCleanOpts is RunClean with the native tier installed per
// opts.NativeLoops: the clean and annotated programs share loop IDs, so
// the same set accelerates both profile runs.
func (c *Compiled) runCleanOpts(ctx context.Context, in Input, opts Options) (int64, error) {
	vm, err := newVM(c.Clean, in, opts.Cfg)
	if err != nil {
		return 0, err
	}
	if len(opts.NativeLoops) > 0 {
		if _, err := vm.InstallNative(opts.NativeLoops...); err != nil {
			return 0, err
		}
	}
	if err := runVM(ctx, vm); err != nil {
		return 0, err
	}
	return vm.Cycles, nil
}
