// Data-set sensitivity (§6.1): "We noticed several applications where
// selected decompositions can change according to input data sizes ...
// loops lower in a loop nest must be chosen with larger data sets because
// the number of inner loop iterations will rise, increasing the
// probability of overflowing speculative state when speculating higher in
// a loop nest."
//
// This example profiles a 2-D sweep at growing grid sizes. With a small
// grid the outer row loop is the best STL; once a full row's speculative
// writes no longer fit the 2kB store buffer (64 lines), TEST's overflow
// analysis kicks in and the selection moves down the nest.
//
//	go run ./examples/datasize
package main

import (
	_ "embed"
	"fmt"
	"log"

	"jrpm"
	"jrpm/internal/profile"
)

//go:embed datasize.jr
var src string

func main() {
	fmt.Println("grid size -> selected STL (overflow frequency of the outer loop)")
	for _, cols := range []int{64, 256, 1024, 4096} {
		rows := 48
		in := jrpm.Input{Ints: map[string][]int64{
			"grid": make([]int64, rows*cols),
			"dims": {int64(rows), int64(cols)},
		}}
		pr, err := jrpm.Profile(src, in, jrpm.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		an := pr.Analysis
		outer := an.Roots[0]
		var ovf float64
		if outer.Stats != nil {
			ovf = profile.Derive(outer.Stats).OverflowFreq
		}
		var chosen string
		for _, n := range an.Selected {
			chosen += fmt.Sprintf("%s(depth %d, est %.2fx) ", an.LoopName(n.Loop), n.Depth, n.Est.Speedup)
		}
		if chosen == "" {
			chosen = "none"
		}
		fmt.Printf("  %3d x %-5d outer overflow freq %.2f -> %s\n", rows, cols, ovf, chosen)
	}
	fmt.Println("\nSmall grids select the outer row loop; once a row's writes exceed")
	fmt.Println("the 64-line store buffer, the overflow analysis pushes the selection")
	fmt.Println("to the inner column loop — the paper's data-set sensitivity effect.")
}
