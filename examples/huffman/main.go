// Figure 3 walkthrough: the paper's own running example. A Huffman
// decoder's outer loop consumes a data-dependent number of input bits per
// iteration, so in_p carries the critical inter-thread dependency arc.
// This example shows the raw comparator-bank counters, the derived values
// of Figure 3, the Equation 1 estimates, and the Table 3 conclusion that
// the outer loop is the better STL — then validates the prediction with
// the TLS execution simulation.
//
//	go run ./examples/huffman
package main

import (
	"fmt"
	"log"

	"jrpm"
	"jrpm/internal/core"
	"jrpm/internal/profile"
	"jrpm/internal/workloads"
)

func main() {
	w, err := workloads.ByName("Huffman")
	if err != nil {
		log.Fatal(err)
	}
	in := w.NewInput(1)

	opts := jrpm.DefaultOptions()
	opts.Tracer.Extended = true // per-load-PC arc binning (Figure 8b)
	pr, err := jrpm.Profile(w.Source, in, opts)
	if err != nil {
		log.Fatal(err)
	}
	an := pr.Analysis
	outer := an.Roots[0]
	inner := outer.Children[0]

	fmt.Println("=== Figure 3: load dependency analysis of the Huffman nest ===")
	for _, n := range []*profile.Node{outer, inner} {
		s := n.Stats
		d := profile.Derive(s)
		fmt.Printf("\n%s (dynamic depth %d)\n", an.LoopName(n.Loop), n.Depth)
		fmt.Printf("  raw counters:   cycles=%d  entries=%d  threads=%d\n", s.Cycles, s.Entries, s.Threads)
		fmt.Printf("  critical arcs:  to t-1: count=%d sumLen=%d   to <t-1: count=%d sumLen=%d\n",
			s.ArcCount[core.BinPrev], s.ArcLenSum[core.BinPrev],
			s.ArcCount[core.BinEarlier], s.ArcLenSum[core.BinEarlier])
		fmt.Printf("  derived:        thread size=%.1f  iters/entry=%.1f\n", d.AvgThreadSize, d.AvgItersPerEntry)
		fmt.Printf("                  arc freq(t-1)=%.2f  avg arc len(t-1)=%.1f  overflow freq=%.3f\n",
			d.ArcFreq[core.BinPrev], d.AvgArcLen[core.BinPrev], d.OverflowFreq)
		fmt.Printf("  Equation 1:     estimated speedup %.2fx\n", n.Est.Speedup)
	}

	fmt.Println("\n=== Extended tracer (§6.3): critical arcs binned by load PC ===")
	if pcs := outer.Stats.PCArcs; len(pcs) > 0 {
		for pc, pa := range pcs {
			fmt.Printf("  load pc %-5d count=%-6d avg arc=%.1f  (this is the in_p read)\n",
				pc, pa.Count, float64(pa.LenSum)/float64(pa.Count))
		}
	}

	fmt.Println("\n=== Table 3: Equation 2 picks the decomposition ===")
	fmt.Printf("  outer: %d cycles / %.2fx = %.0f speculative cycles\n",
		outer.Stats.Cycles, outer.Est.Speedup, outer.TLSTime)
	innerTime := inner.TLSTime
	serial := float64(outer.Stats.Cycles-inner.Stats.Cycles) * an.Scale
	fmt.Printf("  inner: %.0f speculative cycles + %.0f serial = %.0f\n",
		innerTime, serial, innerTime+serial)
	if outer.Selected {
		fmt.Println("  -> outer loop selected (matches the paper)")
	} else {
		fmt.Println("  -> inner loop selected (differs from the paper!)")
	}

	spec, err := jrpm.Speculate(in, pr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== Speculative execution on the simulated Hydra ===")
	for loop, r := range spec.Loops {
		fmt.Printf("  %s: %d threads, %d violations, %d comm-stall cycles -> %.2fx\n",
			an.LoopName(loop), r.Threads, r.Violations, r.CommStalls, r.Speedup)
	}
	fmt.Printf("  predicted program speedup %.2fx, actual %.2fx\n",
		an.PredictedSpeedup(), spec.ActualSpeedup)
}
