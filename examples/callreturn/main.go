// Method-call-return decompositions (§4.1): besides loops, speculative
// threads can fork at a call, running the continuation speculatively while
// the head thread executes the callee. The paper sets this form aside
// because its opportunities were "either not covered by similar loop
// decompositions or [without] significant coverage". This example runs the
// internal/mcr analyzer on two programs to show both halves of that
// sentence: a standalone call whose continuation overlaps heavily, and the
// same call inside a loop, where the loop decomposition already captures
// the parallelism.
//
//	go run ./examples/callreturn
package main

import (
	_ "embed"
	"fmt"
	"log"

	"jrpm/internal/annotate"
	"jrpm/internal/lang"
	"jrpm/internal/mcr"
	"jrpm/internal/vmsim"
)

//go:embed standalone.jr
var standalone string

//go:embed insideloop.jr
var insideLoop string

func analyze(label, src string) {
	prog, err := lang.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := annotate.Apply(prog, annotate.Optimized()); err != nil {
		log.Fatal(err)
	}
	vm := vmsim.New(prog)
	an := mcr.New(prog)
	vm.Listeners = append(vm.Listeners, an)
	if err := vm.BindGlobalInts("a", []int64{7, 11, 13, 17, 19, 23, 29, 31}); err != nil {
		log.Fatal(err)
	}
	if err := vm.BindGlobalInts("out", []int64{0}); err != nil {
		log.Fatal(err)
	}
	if err := vm.Run("main"); err != nil {
		log.Fatal(err)
	}
	an.Finish(vm.Cycles)
	sum := an.Summarize(vm.Cycles)

	fmt.Printf("=== %s ===\n", label)
	fmt.Printf("call sites: %d, dynamic calls: %d\n", sum.Sites, sum.Calls)
	fmt.Printf("exploitable call-return overlap: %.1f%% of execution\n", 100*sum.OverlapFrac)
	fmt.Printf("of which inside loop decompositions: %.0f%%\n\n", 100*sum.InLoopFrac)
}

func main() {
	analyze("standalone call (continuation independent of callee)", standalone)
	analyze("same call inside a loop (subsumed by the loop STL)", insideLoop)
	fmt.Println("The paper keeps loop decompositions only: across the benchmark suite")
	fmt.Println("(go run ./cmd/benchtab -ablate mcr) every overlap sits inside a loop.")
}
