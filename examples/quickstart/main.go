// Quickstart: run the whole Jrpm pipeline — compile, TEST-profile, select
// STLs with Equations 1 and 2, recompile and execute speculatively on the
// simulated 4-CPU Hydra — on a small inline JR program.
//
//	go run ./examples/quickstart
package main

import (
	_ "embed"
	"fmt"
	"log"

	"jrpm"
)

// A vector-scale kernel with an obviously parallel outer loop and a serial
// prefix-sum loop, so both outcomes of the analysis show up.
//
//go:embed quickstart.jr
var src string

func main() {
	n := 2000
	in := jrpm.Input{Ints: map[string][]int64{
		"a":      make([]int64, n),
		"b":      make([]int64, n),
		"prefix": make([]int64, n),
	}}
	for i := 0; i < n; i++ {
		in.Ints["a"][i] = int64(i % 97)
	}

	res, err := jrpm.Run(src, in, jrpm.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	pr := res.Profile
	an := pr.Analysis

	fmt.Printf("sequential execution:  %d cycles\n", pr.CleanCycles)
	fmt.Printf("profiling overhead:    %.1f%% (the paper reports 3-25%%)\n\n", 100*(pr.Slowdown()-1))

	fmt.Println("TEST analysis per loop:")
	for id := range an.Nodes {
		n := an.Nodes[id]
		status := "not selected"
		if n.Selected {
			status = "SELECTED as STL"
		}
		fmt.Printf("  %-16s estimated speedup %.2fx  -> %s\n",
			an.LoopName(id), n.Est.Speedup, status)
	}

	fmt.Printf("\npredicted whole-program speedup: %.2fx\n", an.PredictedSpeedup())
	fmt.Printf("actual (TLS simulation):         %.2fx\n", res.ActualSpeedup)
	fmt.Printf("\nrecompilation plan:\n%s", res.Plan)
}
