// Guided optimization (§6.3): "the statistics quickly identified one or
// two critical dependencies that could be restructured or removed to
// expose parallelism to the speculation hardware."
//
// Version 1 of the kernel below memoizes the last (key, value) pair in a
// shared cache cell — a sequential-code optimization that creates a real
// loop-carried dependency: every iteration reads the cache the previous
// iteration wrote. The extended TEST implementation bins critical arcs by
// load PC, pointing at the exact source line of the cache read. Version 2
// drops the memoization (recomputing is cheap on a CMP) and the loop
// becomes an excellent STL — exactly the restructuring the paper reports
// doing for NumericSort, Huffman, db and MipsSimulator.
//
//	go run ./examples/tuning
package main

import (
	_ "embed"
	"fmt"
	"log"
	"sort"

	"jrpm"
)

//go:embed memoized.jr
var srcMemoized string

//go:embed recompute.jr
var srcRecompute string

func run(label, src string) {
	n := 1500
	in := jrpm.Input{Ints: map[string][]int64{
		"keys":  make([]int64, n),
		"cache": {-1, 0},
		"out":   make([]int64, n),
	}}
	for i := 0; i < n; i++ {
		// Runs of repeated keys make the memoization effective
		// sequentially — and poisonous speculatively.
		in.Ints["keys"][i] = int64((i / 3) % 50)
	}
	opts := jrpm.DefaultOptions()
	opts.Tracer.Extended = true
	res, err := jrpm.Run(src, in, opts)
	if err != nil {
		log.Fatal(err)
	}
	pr := res.Profile
	an := pr.Analysis
	outer := an.Roots[0]

	fmt.Printf("=== %s ===\n", label)
	fmt.Printf("outer loop estimate %.2fx, whole-program actual %.2fx\n",
		outer.Est.Speedup, res.ActualSpeedup)

	if s := outer.Stats; len(s.PCArcs) > 0 {
		fmt.Println("critical arcs by load instruction (extended tracer):")
		pcs := make([]int, 0, len(s.PCArcs))
		for pc := range s.PCArcs {
			pcs = append(pcs, pc)
		}
		sort.Slice(pcs, func(i, j int) bool { return s.PCArcs[pcs[i]].Count > s.PCArcs[pcs[j]].Count })
		for _, pc := range pcs {
			pa := s.PCArcs[pc]
			fn, line, _ := pr.Annotated.FindPC(pc)
			fmt.Printf("  %s line %-3d pc %-5d arcs=%-6d avg len=%.1f\n",
				fn, line, pc, pa.Count, float64(pa.LenSum)/float64(pa.Count))
		}
	} else {
		fmt.Println("no critical arcs — the loop is dependence-free")
	}
	fmt.Println()
}

func main() {
	run("version 1: last-value memoization (loop-carried cache dependency)", srcMemoized)
	run("version 2: recompute instead of memoize (restructured)", srcRecompute)
	fmt.Println("The per-PC bins point straight at the cache reads; removing the")
	fmt.Println("memoization exposes the loop's parallelism to the speculation hardware.")
}
