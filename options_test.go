package jrpm_test

import (
	"testing"

	"jrpm"
	"jrpm/internal/hydra"
	"jrpm/internal/workloads"
)

// TestNormalizePartialOptions pins the fix for the partial-options bug:
// setting only Cfg used to leave Tracer/Select/Annot at their zero values
// (no annotations inserted, zero selection thresholds). Each field must
// be defaulted independently.
func TestNormalizePartialOptions(t *testing.T) {
	d := jrpm.DefaultOptions()

	got := jrpm.Normalize(jrpm.Options{Cfg: hydra.DefaultConfig()})
	if got.Annot != d.Annot {
		t.Errorf("Annot not defaulted: %+v", got.Annot)
	}
	if got.Tracer != d.Tracer {
		t.Errorf("Tracer not defaulted: %+v", got.Tracer)
	}
	if got.Select != d.Select {
		t.Errorf("Select not defaulted: %+v", got.Select)
	}

	// Set fields survive; only zero fields are replaced.
	custom := jrpm.Options{Cfg: hydra.DefaultConfig()}
	custom.Cfg.CPUs = 8
	custom.Select.MinSpeedup = 2.5
	got = jrpm.Normalize(custom)
	if got.Cfg.CPUs != 8 {
		t.Errorf("Cfg overwritten: CPUs=%d", got.Cfg.CPUs)
	}
	if got.Select.MinSpeedup != 2.5 {
		t.Errorf("Select overwritten: %+v", got.Select)
	}
	if got.Tracer != d.Tracer {
		t.Errorf("Tracer not defaulted alongside set fields: %+v", got.Tracer)
	}
}

// TestProfilePartialOptionsMatchesDefaults: profiling with only Cfg set
// now behaves exactly like DefaultOptions — previously it silently ran
// with zero-valued policies and produced no annotations at all.
func TestProfilePartialOptionsMatchesDefaults(t *testing.T) {
	w, err := workloads.ByName("Huffman")
	if err != nil {
		t.Fatal(err)
	}
	in := w.NewInput(0.3)

	partial, err := jrpm.Profile(w.Source, in, jrpm.Options{Cfg: hydra.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	full, err := jrpm.Profile(w.Source, in, jrpm.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if partial.AnnotationCount == 0 {
		t.Fatal("partial options produced no annotations: the old bug is back")
	}
	if partial.AnnotationCount != full.AnnotationCount ||
		partial.TracedCycles != full.TracedCycles ||
		partial.CleanCycles != full.CleanCycles {
		t.Errorf("partial-options run diverged from defaults: partial{ann=%d clean=%d traced=%d} full{ann=%d clean=%d traced=%d}",
			partial.AnnotationCount, partial.CleanCycles, partial.TracedCycles,
			full.AnnotationCount, full.CleanCycles, full.TracedCycles)
	}
}
