// Golden equivalence suite for the internal/trace subsystem: for every
// built-in workload, a recorded trace must replay into the live
// profile's exact analysis — not approximately, bit for bit — and a
// multi-configuration sweep over one recording must cost zero further VM
// executions.
package jrpm_test

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"jrpm"
	"jrpm/internal/hydra"
	"jrpm/internal/trace"
	"jrpm/internal/vmsim"
	"jrpm/internal/workloads"
)

const equivScale = 0.2

// TestReplayEquivalence: record + replay every workload and compare the
// full analysis against a plain live Profile of the same run.
func TestReplayEquivalence(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Meta.Name, func(t *testing.T) {
			t.Parallel()
			opts := jrpm.DefaultOptions()
			c, err := jrpm.Compile(w.Source, opts)
			if err != nil {
				t.Fatal(err)
			}

			live, err := c.Profile(context.Background(), w.NewInput(equivScale), opts)
			if err != nil {
				t.Fatal(err)
			}

			var buf bytes.Buffer
			rec, err := c.ProfileRecord(context.Background(), w.NewInput(equivScale), opts, &buf)
			if err != nil {
				t.Fatal(err)
			}
			// The writer is a passive extra listener: recording must not
			// perturb the profile itself.
			assertSameProfile(t, "record vs live", rec, live)

			rep, err := c.ReplayProfile(buf.Bytes(), opts)
			if err != nil {
				t.Fatal(err)
			}
			assertSameProfile(t, "replay vs live", rep, live)

			// Full comparator-bank state, not just the headline numbers.
			if !reflect.DeepEqual(rep.Tracer.Results(), live.Tracer.Results()) {
				t.Errorf("replay: per-loop tracer tables differ from live run")
			}
		})
	}
}

// assertSameProfile compares every externally visible analysis output
// bit for bit.
func assertSameProfile(t *testing.T, what string, got, want *jrpm.ProfileResult) {
	t.Helper()
	if got.CleanCycles != want.CleanCycles || got.TracedCycles != want.TracedCycles {
		t.Errorf("%s: cycles clean=%d/%d traced=%d/%d", what,
			got.CleanCycles, want.CleanCycles, got.TracedCycles, want.TracedCycles)
	}
	if got.HeapLoads != want.HeapLoads || got.HeapStores != want.HeapStores ||
		got.LocalAnnots != want.LocalAnnots || got.LoopAnnots != want.LoopAnnots ||
		got.ReadStats != want.ReadStats || got.AnnotationCount != want.AnnotationCount {
		t.Errorf("%s: event counters differ", what)
	}
	ga, wa := got.Analysis, want.Analysis
	if !reflect.DeepEqual(ga.SelectedLoopIDs(), wa.SelectedLoopIDs()) {
		t.Errorf("%s: selected %v, want %v", what, ga.SelectedLoopIDs(), wa.SelectedLoopIDs())
	}
	if ga.PredictedCycles != wa.PredictedCycles {
		t.Errorf("%s: predicted cycles %v, want %v", what, ga.PredictedCycles, wa.PredictedCycles)
	}
	if ga.PredictedSpeedup() != wa.PredictedSpeedup() {
		t.Errorf("%s: predicted speedup %v, want %v", what, ga.PredictedSpeedup(), wa.PredictedSpeedup())
	}
	if len(ga.Selected) != len(wa.Selected) {
		t.Fatalf("%s: %d selected nodes, want %d", what, len(ga.Selected), len(wa.Selected))
	}
	for i := range wa.Selected {
		g, w := ga.Selected[i], wa.Selected[i]
		if g.Loop != w.Loop || g.Est != w.Est || !reflect.DeepEqual(g.Stats, w.Stats) {
			t.Errorf("%s: selected node %d differs: %+v vs %+v", what, i, g, w)
		}
	}
}

// TestSweepSingleExecution is the acceptance check for the offline
// analysis driver: analyzing one recording under several hydra
// configurations must perform no VM executions at all — the
// vmsim.RunCount hook proves it.
func TestSweepSingleExecution(t *testing.T) {
	w, err := workloads.ByName("Huffman")
	if err != nil {
		t.Fatal(err)
	}
	opts := jrpm.DefaultOptions()
	c, err := jrpm.Compile(w.Source, opts)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	before := vmsim.RunCount()
	if _, err := c.ProfileRecord(context.Background(), w.NewInput(equivScale), opts, &buf); err != nil {
		t.Fatal(err)
	}
	recorded := vmsim.RunCount() - before
	if recorded != 2 { // clean run + traced run, exactly as Profile does
		t.Fatalf("recording used %d VM executions, want 2", recorded)
	}

	base := hydra.DefaultConfig()
	bankSweep := []int{1, 2, 4, base.Tracer.Banks}
	defIdx := len(bankSweep) - 1 // the default machine is always in the sweep
	var cfgs []hydra.Config
	for _, banks := range bankSweep {
		cfg := base
		cfg.Tracer.Banks = banks
		cfgs = append(cfgs, cfg)
	}

	before = vmsim.RunCount()
	outs := c.SweepTrace(context.Background(), buf.Bytes(), cfgs, opts, 0)
	if n := vmsim.RunCount() - before; n != 0 {
		t.Fatalf("sweeping %d configs used %d VM executions, want 0", len(cfgs), n)
	}
	if len(outs) != len(cfgs) {
		t.Fatalf("%d outcomes for %d configs", len(outs), len(cfgs))
	}
	for i, o := range outs {
		if o.Err != nil {
			t.Fatalf("config %d: %v", i, o.Err)
		}
		if o.Analysis.PredictedSpeedup() < 1 {
			t.Errorf("config %d: predicted speedup %v < 1", i, o.Analysis.PredictedSpeedup())
		}
	}
	// The default configuration appears in the sweep; its outcome must
	// equal the recording's own analysis.
	live, err := c.ReplayProfile(buf.Bytes(), opts)
	if err != nil {
		t.Fatal(err)
	}
	def := outs[defIdx]
	if !reflect.DeepEqual(def.Analysis.SelectedLoopIDs(), live.Analysis.SelectedLoopIDs()) ||
		def.Analysis.PredictedCycles != live.Analysis.PredictedCycles {
		t.Error("default-config sweep outcome differs from direct replay")
	}
}

// TestReplayWrongProgram: a trace must be refused by a different
// program's Compiled.
func TestReplayWrongProgram(t *testing.T) {
	a, err := workloads.ByName("Huffman")
	if err != nil {
		t.Fatal(err)
	}
	b, err := workloads.ByName("NumHeapSort")
	if err != nil {
		t.Fatal(err)
	}
	opts := jrpm.DefaultOptions()
	ca, err := jrpm.Compile(a.Source, opts)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := jrpm.Compile(b.Source, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ca.ProfileRecord(context.Background(), a.NewInput(equivScale), opts, &buf); err != nil {
		t.Fatal(err)
	}
	if _, err := cb.ReplayProfile(buf.Bytes(), opts); err == nil {
		t.Fatal("replay against the wrong program succeeded")
	} else if err != trace.ErrHashMismatch {
		t.Fatalf("want ErrHashMismatch, got %v", err)
	}
}

// TestCompileDeterminism: recompiling the same source yields the same
// structural hash — the property that lets a trace recorded by one
// process be analyzed by another.
func TestCompileDeterminism(t *testing.T) {
	for _, w := range workloads.All() {
		var first [32]byte
		for i := 0; i < 3; i++ {
			c, err := jrpm.Compile(w.Source, jrpm.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			h := c.TraceHash()
			if i == 0 {
				first = h
			} else if h != first {
				t.Fatalf("%s: compile %d produced a different program hash", w.Meta.Name, i)
			}
		}
	}
}
