package jrpm_test

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"jrpm"
	"jrpm/internal/workloads"
)

// TestCompiledSharedAcrossGoroutines enforces the tir.Program concurrency
// contract: one Compiled artifact, shared read-only by many workers, each
// with its own VM and Tracer, profiled under the race detector. Every
// worker must report identical cycle counts and the same selected-STL
// set.
func TestCompiledSharedAcrossGoroutines(t *testing.T) {
	w, err := workloads.ByName("Huffman")
	if err != nil {
		t.Fatal(err)
	}
	in := w.NewInput(0.3)
	opts := jrpm.DefaultOptions()

	compiled, err := jrpm.Compile(w.Source, opts)
	if err != nil {
		t.Fatal(err)
	}

	n := 2 * runtime.GOMAXPROCS(0)
	if n < 8 {
		n = 8
	}
	type outcome struct {
		clean, traced int64
		selected      string
		err           error
	}
	results := make([]outcome, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pr, err := compiled.Profile(context.Background(), in, opts)
			if err != nil {
				results[i] = outcome{err: err}
				return
			}
			results[i] = outcome{
				clean:    pr.CleanCycles,
				traced:   pr.TracedCycles,
				selected: fmt.Sprint(pr.Analysis.SelectedLoopIDs()),
			}
		}(i)
	}
	wg.Wait()

	ref := results[0]
	if ref.err != nil {
		t.Fatal(ref.err)
	}
	if ref.selected == "[]" {
		t.Fatal("no STL selected: the comparison below would be vacuous")
	}
	for i, r := range results[1:] {
		if r.err != nil {
			t.Fatalf("worker %d: %v", i+1, r.err)
		}
		if r != ref {
			t.Fatalf("worker %d diverged: got %+v, want %+v", i+1, r, ref)
		}
	}
}

// TestProfileDeterminismAcrossWorkers runs the complete pipeline — its
// own compile included — on N parallel workers and requires bit-identical
// CleanCycles, TracedCycles and selected-STL sets, plus identical TLS
// simulation outcomes. With -race this doubles as the subsystem's
// data-race audit.
func TestProfileDeterminismAcrossWorkers(t *testing.T) {
	for _, name := range []string{"Huffman", "NumHeapSort"} {
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		in := w.NewInput(0.25)

		const n = 6
		sigs := make([]string, n)
		errs := make([]error, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				res, err := jrpm.Run(w.Source, in, jrpm.DefaultOptions())
				if err != nil {
					errs[i] = err
					return
				}
				pr := res.Profile
				sigs[i] = fmt.Sprintf("clean=%d traced=%d selected=%v actual=%.6f",
					pr.CleanCycles, pr.TracedCycles, pr.Analysis.SelectedLoopIDs(), res.ActualSpeedup)
			}(i)
		}
		wg.Wait()

		for i := 0; i < n; i++ {
			if errs[i] != nil {
				t.Fatalf("%s worker %d: %v", name, i, errs[i])
			}
			if sigs[i] != sigs[0] {
				t.Fatalf("%s: worker %d diverged:\n  %s\nvs\n  %s", name, i, sigs[i], sigs[0])
			}
		}
	}
}
