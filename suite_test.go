package jrpm_test

import (
	"testing"

	"jrpm"
	"jrpm/internal/workloads"
)

// TestAllWorkloadsThroughPipeline pushes every Table 6 benchmark through
// the full pipeline at reduced scale and checks the invariants that must
// hold for any program:
//
//   - profiling succeeds and the slowdown stays in a sane band;
//   - the selected decompositions are mutually exclusive (no
//     ancestor/descendant pairs) and all passed the scalar screen;
//   - predicted time never exceeds sequential time (Equation 2 can always
//     fall back to fully serial);
//   - the TLS simulation yields a speedup in [0.5, CPUs].
func TestAllWorkloadsThroughPipeline(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Meta.Name, func(t *testing.T) {
			in := w.NewInput(0.35)
			res, err := jrpm.Run(w.Source, in, jrpm.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			pr := res.Profile
			an := pr.Analysis

			if s := pr.Slowdown(); s < 1.0 || s > 1.5 {
				t.Errorf("profiling slowdown %.2fx out of band", s)
			}
			if len(an.Selected) == 0 {
				t.Error("no STL selected")
			}

			// Exclusivity and screen.
			isAncestor := func(a, b int) bool {
				for n := an.Nodes[b]; n != nil; n = n.Parent {
					if n.Loop == a {
						return true
					}
				}
				return false
			}
			ids := an.SelectedLoopIDs()
			for _, a := range ids {
				if !pr.Annotated.Loops[a].Candidate {
					t.Errorf("selected loop L%d failed the scalar screen", a)
				}
				for _, b := range ids {
					if a != b && isAncestor(a, b) {
						t.Errorf("selected loops L%d and L%d nest", a, b)
					}
				}
			}

			if an.PredictedCycles > float64(pr.CleanCycles)*1.001 {
				t.Errorf("predicted %.0f exceeds sequential %d", an.PredictedCycles, pr.CleanCycles)
			}
			if res.ActualSpeedup < 0.5 || res.ActualSpeedup > float64(pr.Opts.Cfg.CPUs)+0.01 {
				t.Errorf("actual speedup %.2fx outside [0.5, %d]", res.ActualSpeedup, pr.Opts.Cfg.CPUs)
			}
			// Every selected loop got simulated.
			for _, id := range ids {
				if res.Loops[id] == nil {
					t.Errorf("selected loop L%d has no TLS result", id)
				}
			}
		})
	}
}

// TestPipelineDeterminism: two runs of the same benchmark must agree
// exactly — the whole system is deterministic by construction.
func TestPipelineDeterminism(t *testing.T) {
	w, err := workloads.ByName("NumHeapSort")
	if err != nil {
		t.Fatal(err)
	}
	in := w.NewInput(0.4)
	a, err := jrpm.Run(w.Source, in, jrpm.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := jrpm.Run(w.Source, in, jrpm.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a.Profile.CleanCycles != b.Profile.CleanCycles ||
		a.Profile.TracedCycles != b.Profile.TracedCycles {
		t.Fatalf("cycle counts differ: %d/%d vs %d/%d",
			a.Profile.CleanCycles, a.Profile.TracedCycles,
			b.Profile.CleanCycles, b.Profile.TracedCycles)
	}
	if a.ActualCycles != b.ActualCycles {
		t.Fatalf("TLS simulation differs: %.0f vs %.0f", a.ActualCycles, b.ActualCycles)
	}
	ia, ib := a.Profile.Analysis.SelectedLoopIDs(), b.Profile.Analysis.SelectedLoopIDs()
	if len(ia) != len(ib) {
		t.Fatalf("selections differ: %v vs %v", ia, ib)
	}
	for i := range ia {
		if ia[i] != ib[i] {
			t.Fatalf("selections differ: %v vs %v", ia, ib)
		}
	}
}

// TestSpeculateWithoutSelection: a fully serial program selects nothing
// and Speculate degrades gracefully to sequential time.
func TestSpeculateWithoutSelection(t *testing.T) {
	src := `
global a: int[];
func main() {
	var p: int = 0;
	while (a[p] != -1) {
		p = a[p];
	}
	a[0] = p;
}`
	// A pointer-chase ring ending in -1.
	n := 64
	vals := make([]int64, n)
	for i := 0; i < n-1; i++ {
		vals[i] = int64(i + 1)
	}
	vals[n-1] = -1
	in := jrpm.Input{Ints: map[string][]int64{"a": vals}}
	res, err := jrpm.Run(src, in, jrpm.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Profile.Analysis.Selected) != 0 {
		t.Fatalf("serial chase selected %v", res.Profile.Analysis.SelectedLoopIDs())
	}
	if res.ActualSpeedup < 0.99 || res.ActualSpeedup > 1.01 {
		t.Fatalf("speedup %.3f, want 1.0 (nothing speculated)", res.ActualSpeedup)
	}
}

// TestOptionsDefaulting: zero Options fall back to DefaultOptions.
func TestOptionsDefaulting(t *testing.T) {
	w, _ := workloads.ByName("BitOps")
	in := w.NewInput(0.3)
	res, err := jrpm.Profile(w.Source, in, jrpm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Opts.Cfg.CPUs != 4 {
		t.Fatalf("options not defaulted: %+v", res.Opts.Cfg)
	}
}
