package jrpm

import (
	"bytes"
	"context"
	"io"

	"jrpm/internal/core"
	"jrpm/internal/hydra"
	"jrpm/internal/profile"
	"jrpm/internal/trace"
)

// This file is the public face of the internal/trace subsystem: record a
// profiling run's event stream once, then replay it — through the same
// comparator-bank model, under the same or different machine
// configurations — without re-executing the VM. See internal/trace and
// its FORMAT.md, and the README section "Recording and replaying traces".

// TraceHash returns the structural hash of the annotated program, the
// identity a recorded trace is bound to.
func (c *Compiled) TraceHash() [32]byte {
	return trace.ProgramHash(c.Annotated)
}

// ProfileRecord is Profile plus persistent capture: the traced run's
// event stream is serialized to w as it is produced. The returned
// ProfileResult is bit-identical to what Profile would return — the
// trace writer is a passive extra listener on the same run — and the
// recorded trace replays into the same result via ReplayProfile.
func (c *Compiled) ProfileRecord(ctx context.Context, in Input, opts Options, w io.Writer) (*ProfileResult, error) {
	tw, err := trace.NewWriter(w, c.TraceHash())
	if err != nil {
		return nil, err
	}
	pr, err := c.profileWith(ctx, in, opts, tw)
	if err != nil {
		return nil, err
	}
	if err := tw.Finish(trace.Summary{
		CleanCycles:  pr.CleanCycles,
		TracedCycles: pr.TracedCycles,
		HeapLoads:    pr.HeapLoads,
		HeapStores:   pr.HeapStores,
		LocalAnnots:  pr.LocalAnnots,
		LoopAnnots:   pr.LoopAnnots,
		ReadStats:    pr.ReadStats,
		Annotations:  int64(pr.AnnotationCount),
	}); err != nil {
		return nil, err
	}
	return pr, nil
}

// ReplayProfile reconstructs a ProfileResult from a recorded trace
// without executing the VM: the event stream is replayed into a fresh
// TEST comparator-bank model and the analysis re-run. With the same
// run-stage options this yields bit-identical loop selections and
// speedup estimates to the live profile the trace was recorded from;
// with different options (bank counts, buffer limits, history depths,
// selection thresholds) it answers "what would TEST have concluded on
// that machine" from the same single execution.
//
// The trace must have been recorded from c's annotated program; a
// program-hash mismatch is refused.
func (c *Compiled) ReplayProfile(data []byte, opts Options) (*ProfileResult, error) {
	opts = Normalize(opts)
	opts.Annot = c.Annot
	opts.Optimize = c.Optimize

	r, err := trace.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	if r.Header().ProgramHash != c.TraceHash() {
		return nil, trace.ErrHashMismatch
	}
	r.NumLoops = len(c.Annotated.Loops)

	tracer := core.NewTracer(c.Annotated, opts.Cfg, opts.Tracer)
	sum, err := r.Replay(tracer)
	if err != nil {
		return nil, err
	}

	analysis := profile.BuildTree(c.Annotated, tracer, sum.TracedCycles, sum.CleanCycles, opts.Cfg)
	analysis.Select(opts.Select)

	return &ProfileResult{
		Clean:           c.Clean,
		Annotated:       c.Annotated,
		CleanCycles:     sum.CleanCycles,
		TracedCycles:    sum.TracedCycles,
		Tracer:          tracer,
		Analysis:        analysis,
		HeapLoads:       sum.HeapLoads,
		HeapStores:      sum.HeapStores,
		LocalAnnots:     sum.LocalAnnots,
		LoopAnnots:      sum.LoopAnnots,
		ReadStats:       sum.ReadStats,
		AnnotationCount: int(sum.Annotations),
		Opts:            opts,
	}, nil
}

// SweepTrace analyzes one recorded trace under every configuration
// concurrently (see trace.Sweep): each worker replays the shared bytes
// into its own comparator-bank model, so N configurations cost zero
// additional VM executions. Tracer policies and selection thresholds
// come from opts; each cfgs entry supplies the machine under analysis.
func (c *Compiled) SweepTrace(ctx context.Context, data []byte, cfgs []hydra.Config, opts Options, workers int) []trace.SweepOutcome {
	opts = Normalize(opts)
	jobs := make([]trace.SweepJob, len(cfgs))
	for i, cfg := range cfgs {
		jobs[i] = trace.SweepJob{Cfg: cfg, Tracer: opts.Tracer, Select: opts.Select}
	}
	return trace.Sweep(ctx, c.Annotated, data, jobs, workers)
}
