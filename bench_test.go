// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation. Each benchmark regenerates its artifact end to end
// (compile -> annotate -> trace -> select -> simulate) and reports the
// headline quantity as a custom metric, so `go test -bench=. -benchmem`
// reproduces the whole evaluation. benchScale shrinks the inputs to keep
// a full sweep fast; `cmd/benchtab` runs the full-size version.
package jrpm_test

import (
	"bytes"
	"context"
	"io"
	"sort"
	"strings"
	"testing"
	"time"

	"jrpm"
	"jrpm/internal/core"
	"jrpm/internal/experiments"
	"jrpm/internal/hydra"
	"jrpm/internal/service"
	"jrpm/internal/tir"
	"jrpm/internal/vmsim"
	"jrpm/internal/vmsim/refvm"
	"jrpm/internal/workloads"
)

const benchScale = 0.35

// BenchmarkTable1Config regenerates the buffer-limit table.
func BenchmarkTable1Config(b *testing.B) {
	cfg := hydra.DefaultConfig()
	for i := 0; i < b.N; i++ {
		if experiments.Table1(cfg) == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2Config regenerates the TLS overhead table.
func BenchmarkTable2Config(b *testing.B) {
	cfg := hydra.DefaultConfig()
	for i := 0; i < b.N; i++ {
		if experiments.Table2(cfg) == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable3HuffmanSelection reruns the Equation 2 comparison on the
// Huffman nest and reports both loops' estimated speedups.
func BenchmarkTable3HuffmanSelection(b *testing.B) {
	var d experiments.Table3Data
	for i := 0; i < b.N; i++ {
		var err error
		d, _, err = experiments.Table3(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if !d.OuterChosen {
			b.Fatal("Equation 2 did not choose the outer Huffman loop")
		}
	}
	b.ReportMetric(d.OuterSpeedup, "outer-speedup")
	b.ReportMetric(d.InnerSpeedup, "inner-speedup")
}

// BenchmarkTable4Annotations renders the annotating-instruction summary.
func BenchmarkTable4Annotations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table4() == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable5Transistors recomputes the transistor budget and reports
// TEST's share of the CMP.
func BenchmarkTable5Transistors(b *testing.B) {
	cfg := hydra.DefaultConfig()
	var frac float64
	for i := 0; i < b.N; i++ {
		frac = hydra.TESTFraction(cfg)
		if frac <= 0 || frac >= 0.01 {
			b.Fatalf("TEST fraction %.4f outside the paper's <1%% claim", frac)
		}
	}
	b.ReportMetric(100*frac, "test-%-of-cmp")
}

// BenchmarkTable6Characteristics runs the full 26-benchmark sweep and
// regenerates the characteristics table.
func BenchmarkTable6Characteristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchScale)
		rows, _, err := experiments.Table6(s)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 26 {
			b.Fatalf("%d rows, want 26", len(rows))
		}
	}
}

// BenchmarkFigure6Slowdown measures base vs optimized annotation slowdowns
// across the suite and reports the worst optimized slowdown.
func BenchmarkFigure6Slowdown(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchScale)
		rows, _, err := experiments.Figure6(s)
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, r := range rows {
			if r.OptTotal > worst {
				worst = r.OptTotal
			}
		}
	}
	b.ReportMetric(100*worst, "worst-opt-slowdown-%")
}

// BenchmarkFigure9Pathological reruns the lost-precision demonstration.
func BenchmarkFigure9Pathological(b *testing.B) {
	var rows []experiments.Figure9Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = experiments.Figure9(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := rows[len(rows)-1]
	b.ReportMetric(last.EstSpeedup, "test-estimate-n16")
	b.ReportMetric(last.IdealSpeedup, "available-n16")
}

// BenchmarkFigure10Coverage regenerates the coverage composition chart.
func BenchmarkFigure10Coverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchScale)
		rows, _, err := experiments.Figure10(s)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 26 {
			b.Fatalf("%d rows, want 26", len(rows))
		}
	}
}

// BenchmarkFigure11PredictedVsActual runs profile + TLS simulation for the
// whole suite and reports the mean |predicted-actual| gap.
func BenchmarkFigure11PredictedVsActual(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchScale)
		rows, _, err := experiments.Figure11(s)
		if err != nil {
			b.Fatal(err)
		}
		gap = 0
		for _, r := range rows {
			d := r.ActualNorm - r.PredictedNorm
			if d < 0 {
				d = -d
			}
			gap += d
		}
		gap /= float64(len(rows))
	}
	b.ReportMetric(gap, "mean-abs-gap")
}

// BenchmarkSoftwareProfilerSlowdown reproduces the section 5 software
// profiling comparison and reports the mean modeled software slowdown.
func BenchmarkSoftwareProfilerSlowdown(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchScale)
		rows, _, err := experiments.SoftwareSlowdown(s)
		if err != nil {
			b.Fatal(err)
		}
		mean = 0
		for _, r := range rows {
			mean += r.Software
		}
		mean /= float64(len(rows))
	}
	b.ReportMetric(mean, "sw-slowdown-x")
}

// BenchmarkPipelineHuffman measures the cost of the full Jrpm pipeline on
// the paper's running example.
func BenchmarkPipelineHuffman(b *testing.B) {
	w, err := workloads.ByName("Huffman")
	if err != nil {
		b.Fatal(err)
	}
	in := w.NewInput(benchScale)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := jrpm.Run(w.Source, in, jrpm.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTracerThroughput measures raw tracer event processing: the
// sequential VM running a hot loop with the full TEST model attached.
func BenchmarkTracerThroughput(b *testing.B) {
	w, err := workloads.ByName("LuFactor")
	if err != nil {
		b.Fatal(err)
	}
	in := w.NewInput(benchScale)
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		pr, err := jrpm.Profile(w.Source, in, jrpm.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		cycles = pr.TracedCycles
	}
	b.ReportMetric(float64(cycles), "traced-cycles")
}

// BenchmarkOptimizerEffect measures the microJIT scalar optimizer's static
// and dynamic effect across the suite and checks the pipeline's result is
// stable under it.
func BenchmarkOptimizerEffect(b *testing.B) {
	var shrink float64
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.OptimizerEffect(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		var before, after int
		for _, r := range rows {
			before += r.InstrsBefore
			after += r.InstrsAfter
			if r.InstrsAfter > r.InstrsBefore || r.CyclesAfter > r.CyclesBefore {
				b.Fatalf("%s: optimizer made things worse: %+v", r.Name, r)
			}
		}
		shrink = 100 * (1 - float64(after)/float64(before))
	}
	b.ReportMetric(shrink, "static-shrink-%")
}

// BenchmarkMethodCallReturn reruns the section 4.1 scope-decision
// experiment and reports the worst-case MCR overlap not covered by loops.
func BenchmarkMethodCallReturn(b *testing.B) {
	var worstUncovered float64
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.MethodCallReturn(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		worstUncovered = 0
		for _, r := range rows {
			if u := r.OverlapFrac * (1 - r.InLoopFrac); u > worstUncovered {
				worstUncovered = u
			}
		}
	}
	b.ReportMetric(100*worstUncovered, "uncovered-mcr-%")
}

// BenchmarkServiceCacheHit compares job latency through the jrpmd worker
// pool with a cold compile stage versus a content-addressed cache hit.
// The cold case defeats the cache by perturbing the source text (trailing
// newlines — same compile cost, different SHA-256), so the delta is
// exactly the lex/parse/codegen/annotate work a hit skips.
func BenchmarkServiceCacheHit(b *testing.B) {
	w, err := workloads.ByName("Huffman")
	if err != nil {
		b.Fatal(err)
	}
	in := w.NewInput(benchScale)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	runOne := func(b *testing.B, pool *service.Pool, req service.Request) {
		b.Helper()
		j, err := pool.Submit(req)
		if err != nil {
			b.Fatal(err)
		}
		v, err := j.Wait(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if v.State != service.StateDone {
			b.Fatalf("job %s: %s", v.State, v.Error)
		}
	}

	b.Run("cold-compile", func(b *testing.B) {
		pool := service.NewPool(service.Config{Workers: 1, QueueDepth: 1, CacheSize: 4})
		defer pool.Stop()
		for i := 0; i < b.N; i++ {
			req := service.Request{
				Source: w.Source + strings.Repeat("\n", i+1),
				Ints:   in.Ints,
				Floats: in.Floats,
			}
			runOne(b, pool, req)
		}
		if hits := pool.Metrics().CacheHits.Load(); hits != 0 {
			b.Fatalf("cold case hit the cache %d times", hits)
		}
	})

	b.Run("cache-hit", func(b *testing.B) {
		pool := service.NewPool(service.Config{Workers: 1, QueueDepth: 1, CacheSize: 4})
		defer pool.Stop()
		req := service.Request{Source: w.Source, Ints: in.Ints, Floats: in.Floats}
		runOne(b, pool, req) // warm the cache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runOne(b, pool, req)
		}
		b.StopTimer()
		if hits := pool.Metrics().CacheHits.Load(); hits != int64(b.N) {
			b.Fatalf("cache_hits=%d, want %d", hits, b.N)
		}
	})
}

// BenchmarkAblations runs the three design-choice ablations end to end.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.AblateBanks(benchScale, []int{1, 8}); err != nil {
			b.Fatal(err)
		}
		if _, _, err := experiments.AblateHistory(benchScale, []int{8, 192}); err != nil {
			b.Fatal(err)
		}
		if _, _, err := experiments.AblateBins(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// dispatchKernelSrc is a straight-line array-walk kernel: one hot inner
// loop whose body is a single basic block, the shape the native tier's
// fused whole-iteration path targets. The outer loop re-arms the inner
// one so each VM.Run executes ~600k micro-ops.
const dispatchKernelSrc = `
global a: int[];

func main() {
	var s: int = 0;
	var r: int = 0;
	var i: int = 0;
	while (r < 200) {
		i = 0;
		while (i < len(a)) {
			s = s + a[i];
			i = i + 1;
		}
		r = r + 1;
	}
	print(s);
}
`

// BenchmarkVMDispatch isolates the interpreter hot path across the three
// execution tiers: the reference block-at-a-time oracle (refvm), the
// pre-decoded fast engine (vmsim), and the fast engine with the
// closure-threaded native tier installed on every loop. The untraced
// group runs the clean Huffman workload with no listeners — pure
// dispatch; the traced group runs the annotated program with the full
// comparator-bank tracer attached, measuring what batched emission and
// compiled event closures buy when every heap access emits an event; the
// kernel group runs the straight-line array walk where the native tier's
// fused iteration path should dominate.
func BenchmarkVMDispatch(b *testing.B) {
	w, err := workloads.ByName("Huffman")
	if err != nil {
		b.Fatal(err)
	}
	opts := jrpm.DefaultOptions()
	c, err := jrpm.Compile(w.Source, opts)
	if err != nil {
		b.Fatal(err)
	}
	in := w.NewInput(benchScale)
	ints := in.Ints

	kc, err := jrpm.Compile(dispatchKernelSrc, opts)
	if err != nil {
		b.Fatal(err)
	}
	kints := map[string][]int64{"a": make([]int64, 512)}
	for i := range kints["a"] {
		kints["a"][i] = int64(i*2654435761%251) - 125
	}

	bindAll := func(bind func(string, []int64) error, ints map[string][]int64) {
		names := make([]string, 0, len(ints))
		for name := range ints {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if err := bind(name, ints[name]); err != nil {
				b.Fatal(err)
			}
		}
	}

	type engine struct {
		name string
		run  func(prog *tir.Program, ints map[string][]int64, traced bool) int64
	}
	fastRun := func(native bool) func(prog *tir.Program, ints map[string][]int64, traced bool) int64 {
		return func(prog *tir.Program, ints map[string][]int64, traced bool) int64 {
			vm := vmsim.New(prog)
			vm.Out = io.Discard
			if native {
				if _, err := vm.InstallNativeAll(); err != nil {
					b.Fatal(err)
				}
			}
			if traced {
				vm.Listeners = []vmsim.Listener{core.NewTracer(prog, opts.Cfg, core.DefaultOptions())}
			}
			bindAll(vm.BindGlobalInts, ints)
			if err := vm.Run("main"); err != nil {
				b.Fatal(err)
			}
			return vm.Cycles
		}
	}
	engines := []engine{
		{"fast", fastRun(false)},
		{"native", fastRun(true)},
		{"ref", func(prog *tir.Program, ints map[string][]int64, traced bool) int64 {
			vm := refvm.New(prog)
			vm.Out = io.Discard
			if traced {
				vm.Listeners = []vmsim.Listener{core.NewTracer(prog, opts.Cfg, core.DefaultOptions())}
			}
			bindAll(vm.BindGlobalInts, ints)
			if err := vm.Run("main"); err != nil {
				b.Fatal(err)
			}
			return vm.Cycles
		}},
	}

	groups := []struct {
		name   string
		prog   *tir.Program
		ints   map[string][]int64
		traced bool
	}{
		{"untraced", c.Clean, ints, false},
		{"traced", c.Annotated, ints, true},
		{"kernel", kc.Clean, kints, false},
	}
	for _, g := range groups {
		for _, eng := range engines {
			g, eng := g, eng
			b.Run(g.name+"/"+eng.name, func(b *testing.B) {
				var cycles int64
				for i := 0; i < b.N; i++ {
					cycles = eng.run(g.prog, g.ints, g.traced)
				}
				b.ReportMetric(float64(cycles)/float64(b.Elapsed().Nanoseconds())*float64(b.N)*1e3, "Mcycles/s")
			})
		}
	}
}

// BenchmarkTraceRecordOverhead measures what attaching the trace writer
// costs on top of plain profiling: the `live` and `record` sub-benchmarks
// run the identical pipeline, the latter with the event stream serialized
// to io.Discard. The delta is the recording tax; bytes/op reports the
// encoded trace size per run.
func BenchmarkTraceRecordOverhead(b *testing.B) {
	w, err := workloads.ByName("Huffman")
	if err != nil {
		b.Fatal(err)
	}
	opts := jrpm.DefaultOptions()
	c, err := jrpm.Compile(w.Source, opts)
	if err != nil {
		b.Fatal(err)
	}
	in := w.NewInput(benchScale)

	b.Run("live", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := c.Profile(context.Background(), in, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("record", func(b *testing.B) {
		var n countingWriter
		for i := 0; i < b.N; i++ {
			if _, err := c.ProfileRecord(context.Background(), in, opts, &n); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(n)/float64(b.N), "trace-bytes/op")
	})
}

// countingWriter discards while counting, so the benchmark can report
// encoded trace size without buffering it.
type countingWriter int64

func (c *countingWriter) Write(p []byte) (int, error) {
	*c += countingWriter(len(p))
	return len(p), nil
}

// BenchmarkReplayVsLiveProfile compares re-running the VM against
// replaying a recorded trace into a fresh comparator-bank model — the
// speedup that makes multi-configuration sweeps cheap.
func BenchmarkReplayVsLiveProfile(b *testing.B) {
	w, err := workloads.ByName("Huffman")
	if err != nil {
		b.Fatal(err)
	}
	opts := jrpm.DefaultOptions()
	c, err := jrpm.Compile(w.Source, opts)
	if err != nil {
		b.Fatal(err)
	}
	in := w.NewInput(benchScale)
	var buf bytes.Buffer
	if _, err := c.ProfileRecord(context.Background(), in, opts, &buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()

	b.Run("live", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := c.Profile(context.Background(), in, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("replay", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if _, err := c.ReplayProfile(data, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sweep-8-configs", func(b *testing.B) {
		base := hydra.DefaultConfig()
		var cfgs []hydra.Config
		for _, banks := range []int{1, 2, 4, 8} {
			for _, hist := range []int{32, 192} {
				cfg := base
				cfg.Tracer.Banks = banks
				cfg.Tracer.HeapStoreLines = hist
				cfgs = append(cfgs, cfg)
			}
		}
		for i := 0; i < b.N; i++ {
			for ci, o := range c.SweepTrace(context.Background(), data, cfgs, opts, 0) {
				if o.Err != nil {
					b.Fatalf("config %d: %v", ci, o.Err)
				}
			}
		}
	})
}
