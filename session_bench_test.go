// Session-loop overhead benchmarks: the adaptive loop's bookkeeping
// (tier records, hysteresis, transition log, spans) must stay in the
// noise next to the profiling and TLS simulation it schedules. CI pins
// the epoch/bare ratio at <= 1.05 and `cmd/benchtab -benchjson` turns
// the output into BENCH_session.json.
package jrpm_test

import (
	"context"
	"testing"

	"jrpm"
	"jrpm/internal/session"
	"jrpm/internal/workloads"
)

// BenchmarkSessionEpoch compares one bare pipeline round (profile +
// speculate on the selected loops) against the same round driven by an
// adaptive session epoch, on a prewarmed Compiled. PromoteStreak 1 makes
// the single session epoch promote and speculate immediately, so both
// sub-benchmarks execute the same VM work and the difference is the
// session machinery itself.
func BenchmarkSessionEpoch(b *testing.B) {
	w, err := workloads.ByName("Huffman")
	if err != nil {
		b.Fatal(err)
	}
	in := w.NewInput(benchScale)
	compiled, err := jrpm.Compile(w.Source, jrpm.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()

	// The session attaches the sampling profiler at its default period;
	// the bare round gets the same options so both sides run identical VM
	// configurations.
	opts := jrpm.DefaultOptions()
	opts.SamplePeriod = session.DefaultSamplePeriod

	b.Run("bare", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pr, err := compiled.Profile(ctx, in, opts)
			if err != nil {
				b.Fatal(err)
			}
			sel := pr.Analysis.SelectedLoopIDs()
			if len(sel) == 0 {
				b.Fatal("no loops selected")
			}
			if _, err := jrpm.SpeculateLoops(ctx, in, pr, sel); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("epoch", func(b *testing.B) {
		th := session.DefaultThresholds()
		th.PromoteStreak = 1
		for i := 0; i < b.N; i++ {
			s, err := session.New(session.Config{
				Compiled:   compiled,
				Name:       "bench",
				Traffic:    session.FixedTraffic(in),
				Epochs:     1,
				Thresholds: th,
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := s.Run(ctx); err != nil {
				b.Fatal(err)
			}
			if v := s.View(); len(v.Transitions) == 0 {
				b.Fatal("session epoch promoted nothing")
			}
		}
	})
}
